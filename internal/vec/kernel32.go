package vec

import (
	"fmt"
	"math"
)

// This file holds the float32 distance kernels behind the selectable-
// precision scan path (store.Float32 precision). Unlike the float64 kernels,
// whose accumulation order is pinned to the scalar left-to-right reference so
// results stay bit-identical to the historical per-vector loops, the float32
// kernels define their OWN canonical accumulation order: eight independent
// lane accumulators (component i feeds lane i%8 over the 8-aligned prefix), a
// fixed horizontal reduction
//
//	((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))
//
// and a left-to-right scalar tail — exactly the dataflow of one AVX2 ymm
// accumulator followed by the VEXTRACTF128/VPSHUFD reduction in
// fkernel_amd64.s. The portable loops below reproduce that order term for
// term, so the accelerated and portable paths are bit-identical and float32
// results are one deterministic mode across platforms and build tags.
//
// Every product and sum is written through an explicit float32 conversion or
// a separately-rounded named intermediate: the Go spec only licenses fused
// multiply-add when an expression is not explicitly rounded, so these loops
// can never be FMA-fused (on arm64 the gc compiler otherwise would), which
// would break cross-platform bit-equality.

// float32BatchKernel, when non-nil, is a platform-accelerated implementation
// of the SquaredDistsTo32 inner loop (amd64: AVX2, installed by init when the
// CPU supports it and the build is not tagged noasm). The accelerated kernel
// follows the canonical accumulation order above, so every implementation
// returns bit-identical results; the hook trades nothing but time.
var float32BatchKernel func(q *float32, dim int, block *float32, out *float32, rows int)

// HasAcceleratedFloat32Batch reports whether a platform-accelerated kernel
// backs SquaredDistsTo32 on this CPU.
func HasAcceleratedFloat32Batch() bool { return float32BatchKernel != nil }

// SqL232 returns the squared Euclidean distance between two float32 vectors
// in the canonical float32 accumulation order (see the file comment) — the
// value SquaredDistsTo32 produces for the same row. It panics on a length
// mismatch.
func SqL232(q, v []float32) float32 {
	if len(q) != len(v) {
		panic(fmt.Sprintf("vec: dims %d != %d", len(q), len(v)))
	}
	return sqDist32Row(q, v)
}

// sqDist32Row scores one row in the canonical lane order. Callers guarantee
// len(row) == len(q).
func sqDist32Row(q, row []float32) float32 {
	var l0, l1, l2, l3, l4, l5, l6, l7 float32
	i := 0
	for ; i+8 <= len(q); i += 8 {
		d0 := q[i] - row[i]
		d1 := q[i+1] - row[i+1]
		d2 := q[i+2] - row[i+2]
		d3 := q[i+3] - row[i+3]
		d4 := q[i+4] - row[i+4]
		d5 := q[i+5] - row[i+5]
		d6 := q[i+6] - row[i+6]
		d7 := q[i+7] - row[i+7]
		l0 += float32(d0 * d0)
		l1 += float32(d1 * d1)
		l2 += float32(d2 * d2)
		l3 += float32(d3 * d3)
		l4 += float32(d4 * d4)
		l5 += float32(d5 * d5)
		l6 += float32(d6 * d6)
		l7 += float32(d7 * d7)
	}
	s := reduce32(l0, l1, l2, l3, l4, l5, l6, l7)
	for ; i < len(q); i++ {
		d := q[i] - row[i]
		s += float32(d * d)
	}
	return s
}

// reduce32 folds the eight lane accumulators in the fixed AVX2 shuffle order:
// lower+upper xmm halves, then 64-bit pair swap, then 32-bit pair swap.
func reduce32(l0, l1, l2, l3, l4, l5, l6, l7 float32) float32 {
	s04 := l0 + l4
	s15 := l1 + l5
	s26 := l2 + l6
	s37 := l3 + l7
	a := s04 + s26
	b := s15 + s37
	return a + b
}

// SquaredDistsTo32 computes out[r] = SqL232(q, row_r) for every dimension-
// strided row of block, where block holds len(out) rows of len(q) contiguous
// components. It panics if len(block) != len(out)*len(q). All implementations
// (portable and accelerated) are bit-identical.
func SquaredDistsTo32(q []float32, block []float32, out []float32) {
	dim := len(q)
	if len(block) != len(out)*dim {
		panic(fmt.Sprintf("vec: block %d != %d rows x %d dims", len(block), len(out), dim))
	}
	if dim == 0 {
		for r := range out {
			out[r] = 0
		}
		return
	}
	if float32BatchKernel != nil && dim >= 8 && len(out) > 0 {
		float32BatchKernel(&q[0], dim, &block[0], &out[0], len(out))
		return
	}
	float32SquaredDistsToGeneric(q, block, out)
}

// float32SquaredDistsToGeneric is the portable batch kernel (and the
// reference the accelerated implementations are tested against).
func float32SquaredDistsToGeneric(q []float32, block []float32, out []float32) {
	dim := len(q)
	for r := range out {
		out[r] = sqDist32Row(q, block[r*dim:r*dim+dim:r*dim+dim])
	}
}

// SquaredDistCapped32 is SqL232 with partial-distance early exit: the scan
// checks the running sum against limit after every 8-component lane block
// (reducing the lanes in the canonical order each time) and returns the
// partial reduction once it reaches limit. Lane accumulators are monotone
// (non-negative terms) and float addition is monotone, so for any limit the
// returned value r satisfies
//
//	r < limit  ⟺  SqL232(q, v) < limit
//
// and whenever r < limit it is bit-identical to SqL232(q, v) (no exit fired;
// the final reduction is the one SqL232 performs). NaN components never
// trigger the exit. Callers must use the result only for strict below-limit
// decisions, or as the exact canonical-order distance when below limit — the
// same contract as SquaredDistCapped.
func SquaredDistCapped32(q, v []float32, limit float32) float32 {
	if len(q) != len(v) {
		panic(fmt.Sprintf("vec: dims %d != %d", len(q), len(v)))
	}
	var l0, l1, l2, l3, l4, l5, l6, l7 float32
	var s float32
	i := 0
	for ; i+8 <= len(q); i += 8 {
		d0 := q[i] - v[i]
		d1 := q[i+1] - v[i+1]
		d2 := q[i+2] - v[i+2]
		d3 := q[i+3] - v[i+3]
		d4 := q[i+4] - v[i+4]
		d5 := q[i+5] - v[i+5]
		d6 := q[i+6] - v[i+6]
		d7 := q[i+7] - v[i+7]
		l0 += float32(d0 * d0)
		l1 += float32(d1 * d1)
		l2 += float32(d2 * d2)
		l3 += float32(d3 * d3)
		l4 += float32(d4 * d4)
		l5 += float32(d5 * d5)
		l6 += float32(d6 * d6)
		l7 += float32(d7 * d7)
		s = reduce32(l0, l1, l2, l3, l4, l5, l6, l7)
		if s >= limit {
			return s
		}
	}
	s = reduce32(l0, l1, l2, l3, l4, l5, l6, l7)
	for ; i < len(q); i++ {
		d := q[i] - v[i]
		s += float32(d * d)
		if s >= limit {
			return s
		}
	}
	return s
}

// top32Entry is one candidate in a TopK32 selection.
type top32Entry struct {
	dist float32
	id   int
}

// Entry32 is one selected (distance, id) pair returned by TopK32.
type Entry32 struct {
	Dist float32
	ID   int
}

// TopK32 selects the k smallest (dist, id) pairs from a stream of float32
// candidates. It mirrors TopK's bounded max-heap with the same strict-<
// admission rule, keyed on float32 distances, so Threshold() is the exact
// limit to pass to SquaredDistCapped32 when scanning.
type TopK32 struct {
	k int
	h []top32Entry
}

// NewTopK32 returns a selector for the k smallest candidates. k <= 0 selects
// nothing.
func NewTopK32(k int) *TopK32 {
	if k < 0 {
		k = 0
	}
	return &TopK32{k: k, h: make([]top32Entry, 0, k)}
}

// Reset empties the selector for reuse, keeping its buffer.
func (t *TopK32) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.h = t.h[:0]
}

// Len returns the number of candidates currently retained.
func (t *TopK32) Len() int { return len(t.h) }

// Threshold returns the current admission bound: +Inf until k candidates are
// retained, then the largest retained distance. A candidate is admitted iff
// its distance is strictly below Threshold.
func (t *TopK32) Threshold() float32 {
	if len(t.h) < t.k {
		return float32(math.Inf(1))
	}
	if t.k == 0 {
		return float32(math.Inf(-1))
	}
	return t.h[0].dist
}

// Add offers one candidate. Distances compared against the threshold may be
// capped partials (see SquaredDistCapped32): a rejected candidate's value is
// never stored, and an admitted one was below the limit and therefore exact.
func (t *TopK32) Add(dist float32, id int) {
	if t.k == 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, top32Entry{dist: dist, id: id})
		h := t.h
		j := len(h) - 1
		for {
			i := (j - 1) / 2
			if i == j || !(h[j].dist > h[i].dist) {
				break
			}
			h[i], h[j] = h[j], h[i]
			j = i
		}
		return
	}
	if dist < t.h[0].dist {
		t.h[0] = top32Entry{dist: dist, id: id}
		h := t.h
		n := len(h)
		i := 0
		for {
			j1 := 2*i + 1
			if j1 >= n {
				break
			}
			j := j1
			if j2 := j1 + 1; j2 < n && h[j2].dist > h[j1].dist {
				j = j2
			}
			if !(h[j].dist > h[i].dist) {
				break
			}
			h[i], h[j] = h[j], h[i]
			i = j
		}
	}
}

// AppendEntries appends the retained candidates to dst in ascending
// (dist, id) order and returns the extended slice. The selector is left in an
// unspecified order; Reset before reuse.
func (t *TopK32) AppendEntries(dst []Entry32) []Entry32 {
	es := t.h
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].dist < es[j-1].dist ||
			(es[j].dist == es[j-1].dist && es[j].id < es[j-1].id)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	for _, e := range es {
		dst = append(dst, Entry32{Dist: e.dist, ID: e.id})
	}
	return dst
}

// AppendIDs appends the retained candidate IDs to dst in ascending (dist, id)
// order and returns the extended slice. The selector is left in an
// unspecified order; Reset before reuse.
func (t *TopK32) AppendIDs(dst []int) []int {
	es := t.h
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].dist < es[j-1].dist ||
			(es[j].dist == es[j-1].dist && es[j].id < es[j-1].id)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	for _, e := range es {
		dst = append(dst, e.id)
	}
	return dst
}

// Narrow32 converts a float64 backing array to float32, rounding each
// component once (round-to-nearest-even). It is the single conversion point
// of the float32 data plane: a corpus narrows once at build/enable time and a
// query narrows once per search, so the hot loops never convert per-row.
func Narrow32(src []float64, dst []float32) []float32 {
	if cap(dst) < len(src) {
		dst = make([]float32, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// Widen64 converts a float32 backing array to float64 (exact — every float32
// is representable as a float64).
func Widen64(src []float32, dst []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float64(v)
	}
	return dst
}
