//go:build amd64 && gc && !purego && !noasm

package vec

// hasAVX2 reports whether the CPU and OS support AVX2 (CPUID feature bit plus
// OS-enabled YMM state via XGETBV). Implemented in qkernel_amd64.s.
func hasAVX2() bool

// uint8SqDistsAVX2 is the AVX2 batch kernel behind Uint8SquaredDistsTo:
// out[r] = Σ_i (q[i]−block[r*dim+i])² for r in [0, rows). Each 16-code chunk
// widens to int16 lanes (VPMOVZXBW), differences square-and-pair-sum into
// int32 lanes (VPMADDWD), and the ≤15-code tail runs scalar in the same
// function — all integer, so the result is bit-identical to the Go loop.
// Implemented in qkernel_amd64.s.
//
//go:noescape
func uint8SqDistsAVX2(q *uint8, dim int, block *uint8, out *int32, rows int)

// uint8SqDistsMulti4AVX2 is the AVX2 multi-query kernel behind
// Uint8SquaredDistsToMulti: four contiguous query code rows scored against
// every row of block with one widening of each row chunk, int32 out
// query-major with stride ostride. All integer, so results are identical to
// four single-query calls. Implemented in qkernel_amd64.s.
//
//go:noescape
func uint8SqDistsMulti4AVX2(qs *uint8, dim int, block *uint8, out *int32, ostride int, rows int)

func init() {
	if hasAVX2() {
		uint8BatchKernel = uint8SqDistsAVX2
		uint8MultiKernel = uint8SqDistsMulti4AVX2
	}
}
