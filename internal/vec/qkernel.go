package vec

import (
	"fmt"
	"math"
)

// This file holds the SQ8 (scalar-quantized, 8-bit) distance kernels behind
// the compressed scan path. Codes are uint8 per component; distances between
// code vectors accumulate in int32 — exact integer arithmetic, so unlike the
// float kernels these may reassociate freely (multiple accumulators) without
// breaking any determinism guarantee. The caller decodes a code distance to
// the metric scale by multiplying with its quantizer's delta² (see
// store.Quantized); the kernels themselves never touch floating point.
//
// Overflow bound: one squared component difference is at most 255² = 65025,
// so a full accumulation fits int32 for any dim ≤ 33025. The quantizer
// construction enforces that bound (store.QuantizeBacking), so the kernels
// only debug-check lengths.

// uint8BatchKernel, when non-nil, is a platform-accelerated implementation
// of the Uint8SquaredDistsTo inner loop (amd64: AVX2, installed by init when
// the CPU supports it). Integer arithmetic is exact, so every implementation
// returns bit-identical results; the hook trades nothing but time.
var uint8BatchKernel func(q *uint8, dim int, block *uint8, out *int32, rows int)

// HasAcceleratedUint8Batch reports whether a platform-accelerated kernel
// backs Uint8SquaredDistsTo on this CPU. Scans use it to choose between a
// chunked batch sweep (SIMD-friendly) and a per-row capped scan (better for
// the portable kernels, which early-exit against the selection threshold).
func HasAcceleratedUint8Batch() bool { return uint8BatchKernel != nil }

// Uint8SquaredDistsTo computes out[r] = Σ_i (q[i]−row_r[i])² in int32 for
// every dimension-strided row of block, where block holds len(out) rows of
// len(q) contiguous codes. It panics if len(block) != len(out)*len(q).
//
// The loop runs four independent accumulators; integer addition is
// associative, so the result is exactly the naive left-to-right sum.
func Uint8SquaredDistsTo(q []uint8, block []uint8, out []int32) {
	dim := len(q)
	if len(block) != len(out)*dim {
		panic(fmt.Sprintf("vec: block %d != %d rows x %d dims", len(block), len(out), dim))
	}
	if dim == 0 {
		for r := range out {
			out[r] = 0
		}
		return
	}
	if uint8BatchKernel != nil && dim >= 16 && len(out) > 0 {
		uint8BatchKernel(&q[0], dim, &block[0], &out[0], len(out))
		return
	}
	uint8SquaredDistsToGeneric(q, block, out)
}

// uint8SquaredDistsToGeneric is the portable batch kernel (and the reference
// the accelerated implementations are tested against).
func uint8SquaredDistsToGeneric(q []uint8, block []uint8, out []int32) {
	dim := len(q)
	for r := range out {
		row := block[r*dim : r*dim+dim : r*dim+dim]
		var s0, s1, s2, s3 int32
		i := 0
		for ; i+4 <= dim; i += 4 {
			d0 := int32(q[i]) - int32(row[i])
			d1 := int32(q[i+1]) - int32(row[i+1])
			d2 := int32(q[i+2]) - int32(row[i+2])
			d3 := int32(q[i+3]) - int32(row[i+3])
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; i < dim; i++ {
			d := int32(q[i]) - int32(row[i])
			s0 += d * d
		}
		out[r] = s0 + s1 + s2 + s3
	}
}

// Uint8SquaredDist returns Σ_i (q[i]−v[i])² in int32. It panics on a length
// mismatch.
func Uint8SquaredDist(q, v []uint8) int32 {
	if len(q) != len(v) {
		panic(fmt.Sprintf("vec: code dims %d != %d", len(q), len(v)))
	}
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(q); i += 4 {
		d0 := int32(q[i]) - int32(v[i])
		d1 := int32(q[i+1]) - int32(v[i+1])
		d2 := int32(q[i+2]) - int32(v[i+2])
		d3 := int32(q[i+3]) - int32(v[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(q); i++ {
		d := int32(q[i]) - int32(v[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// Uint8SquaredDistCapped is Uint8SquaredDist with partial-distance early
// exit: the scan checks the running sum against limit every eight components
// and returns the partial sum once it reaches limit. Terms are non-negative,
// so for any limit the returned value r satisfies
//
//	r < limit  ⟺  Uint8SquaredDist(q, v) < limit
//
// and whenever r < limit it equals the full distance (no exit fired and the
// remaining terms were consumed). Callers must use the result only for
// strict below-limit decisions, or as the exact code distance when it is
// below limit — the same contract as SquaredDistCapped.
func Uint8SquaredDistCapped(q, v []uint8, limit int32) int32 {
	if len(q) != len(v) {
		panic(fmt.Sprintf("vec: code dims %d != %d", len(q), len(v)))
	}
	var s int32
	i := 0
	for ; i+8 <= len(q); i += 8 {
		d0 := int32(q[i]) - int32(v[i])
		d1 := int32(q[i+1]) - int32(v[i+1])
		d2 := int32(q[i+2]) - int32(v[i+2])
		d3 := int32(q[i+3]) - int32(v[i+3])
		d4 := int32(q[i+4]) - int32(v[i+4])
		d5 := int32(q[i+5]) - int32(v[i+5])
		d6 := int32(q[i+6]) - int32(v[i+6])
		d7 := int32(q[i+7]) - int32(v[i+7])
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5 + d6*d6 + d7*d7
		if s >= limit {
			return s
		}
	}
	for ; i < len(q); i++ {
		d := int32(q[i]) - int32(v[i])
		s += d * d
	}
	return s
}

// quantEntry is one candidate in a QuantTopK selection.
type quantEntry struct {
	dist int32
	id   int
}

// QuantTopK selects the k smallest (code distance, id) pairs from a stream of
// candidates — the approximate-TopK of the two-phase k-NN's quantized scan.
// It mirrors TopK's bounded max-heap with the same strict-< admission rule,
// but keyed on int32 code distances, so Threshold() is the exact limit to
// pass to Uint8SquaredDistCapped.
//
// The selector's exactness property feeding the rerank guarantee: admission
// thresholds only decrease, so every candidate NOT retained at the end had a
// code distance >= the final Threshold(). The rerank phase uses that bound to
// prove no excluded point can enter the exact top-k.
type QuantTopK struct {
	k int
	h []quantEntry
}

// NewQuantTopK returns a selector for the k smallest candidates. k <= 0
// selects nothing.
func NewQuantTopK(k int) *QuantTopK {
	if k < 0 {
		k = 0
	}
	return &QuantTopK{k: k, h: make([]quantEntry, 0, k)}
}

// Reset empties the selector for reuse, keeping its buffer.
func (t *QuantTopK) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.h = t.h[:0]
}

// Len returns the number of candidates currently retained.
func (t *QuantTopK) Len() int { return len(t.h) }

// Threshold returns the current admission bound: MaxInt32 until k candidates
// are retained, then the largest retained code distance. A candidate is
// admitted iff its distance is strictly below Threshold.
func (t *QuantTopK) Threshold() int32 {
	if len(t.h) < t.k {
		return math.MaxInt32
	}
	if t.k == 0 {
		return math.MinInt32
	}
	return t.h[0].dist
}

// Add offers one candidate. Distances compared against the threshold may be
// capped partials (see Uint8SquaredDistCapped): a rejected candidate's value
// is never stored, and an admitted one was below the limit and therefore
// exact.
func (t *QuantTopK) Add(dist int32, id int) {
	if t.k == 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, quantEntry{dist: dist, id: id})
		h := t.h
		j := len(h) - 1
		for {
			i := (j - 1) / 2
			if i == j || !(h[j].dist > h[i].dist) {
				break
			}
			h[i], h[j] = h[j], h[i]
			j = i
		}
		return
	}
	if dist < t.h[0].dist {
		t.h[0] = quantEntry{dist: dist, id: id}
		h := t.h
		n := len(h)
		i := 0
		for {
			j1 := 2*i + 1
			if j1 >= n {
				break
			}
			j := j1
			if j2 := j1 + 1; j2 < n && h[j2].dist > h[j1].dist {
				j = j2
			}
			if !(h[j].dist > h[i].dist) {
				break
			}
			h[i], h[j] = h[j], h[i]
			i = j
		}
	}
}

// AppendIDs appends the retained candidate IDs to dst in ascending
// (code distance, id) order and returns the extended slice. The selector is
// left in an unspecified order; Reset before reuse.
func (t *QuantTopK) AppendIDs(dst []int) []int {
	es := t.h
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].dist < es[j-1].dist ||
			(es[j].dist == es[j-1].dist && es[j].id < es[j-1].id)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	for _, e := range es {
		dst = append(dst, e.id)
	}
	return dst
}
