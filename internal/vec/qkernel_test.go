package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randCodes(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(256))
	}
	return out
}

func naiveUint8SqDist(q, v []uint8) int32 {
	var s int32
	for i := range q {
		d := int32(q[i]) - int32(v[i])
		s += d * d
	}
	return s
}

// TestUint8KernelsAgree: block kernel, scalar kernel, and naive loop must be
// exactly equal (integer arithmetic — no tolerance) across dims that exercise
// both the unrolled body and the tails.
func TestUint8KernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 37, 64, 100} {
		q := randCodes(rng, dim)
		rows := 17
		block := randCodes(rng, rows*dim)
		out := make([]int32, rows)
		Uint8SquaredDistsTo(q, block, out)
		for r := 0; r < rows; r++ {
			row := block[r*dim : (r+1)*dim]
			want := naiveUint8SqDist(q, row)
			if out[r] != want {
				t.Fatalf("dim %d row %d: block %d, naive %d", dim, r, out[r], want)
			}
			if got := Uint8SquaredDist(q, row); got != want {
				t.Fatalf("dim %d row %d: scalar %d, naive %d", dim, r, got, want)
			}
		}
	}
}

// TestUint8KernelMaxDistance: the extreme corpus (all-0 vs all-255 codes at
// the dimensionality limit) must not overflow int32.
func TestUint8KernelMaxDistance(t *testing.T) {
	const dim = math.MaxInt32 / (255 * 255) // maxSQ8Dim in package store
	q := make([]uint8, dim)
	v := make([]uint8, dim)
	for i := range v {
		v[i] = 255
	}
	want := int32(dim) * 255 * 255
	if got := Uint8SquaredDist(q, v); got != want {
		t.Fatalf("max distance %d, want %d", got, want)
	}
	if got := Uint8SquaredDistCapped(q, v, math.MaxInt32); got != want {
		t.Fatalf("capped max distance %d, want %d", got, want)
	}
}

// TestUint8SquaredDistCappedContract: for any limit, (result < limit) must
// agree with (full distance < limit), and a below-limit result must equal the
// full distance exactly — the same contract SquaredDistCapped documents.
func TestUint8SquaredDistCappedContract(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		dim := rng.Intn(40)
		q, v := randCodes(rng, dim), randCodes(rng, dim)
		full := naiveUint8SqDist(q, v)
		var limit int32
		switch trial % 4 {
		case 0:
			limit = full // boundary: equal is not below
		case 1:
			limit = full + 1
		case 2:
			limit = full / 2
		default:
			limit = int32(rng.Intn(65025*40 + 1))
		}
		r := Uint8SquaredDistCapped(q, v, limit)
		if (r < limit) != (full < limit) {
			t.Fatalf("dim %d limit %d: capped %d, full %d — below-limit verdicts disagree",
				dim, limit, r, full)
		}
		if r < limit && r != full {
			t.Fatalf("dim %d limit %d: admitted value %d != full %d", dim, limit, r, full)
		}
	}
}

// TestQuantTopKMatchesSort: the selector must retain the k smallest distance
// VALUES (ties at the boundary may retain any of the equal candidates — the
// rerank guarantee only needs every non-retained candidate to sit at or above
// the final threshold), with AppendIDs in ascending (dist, id) order.
func TestQuantTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(20)
		dists := make([]int32, n) // indexed by candidate id
		sel := NewQuantTopK(k)
		for i := range dists {
			dists[i] = int32(rng.Intn(8)) // small range forces ties
			if dists[i] >= sel.Threshold() {
				continue // mimic the capped-kernel reject path
			}
			sel.Add(dists[i], i)
		}
		sorted := append([]int32(nil), dists...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		want := sorted
		if len(want) > k {
			want = want[:k]
		}
		got := sel.AppendIDs(nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d retained, want %d", trial, len(got), len(want))
		}
		threshold := sel.Threshold()
		retained := make(map[int]bool, len(got))
		for i, id := range got {
			if dists[id] != want[i] {
				t.Fatalf("trial %d pos %d: id %d has dist %d, want value %d",
					trial, i, id, dists[id], want[i])
			}
			if i > 0 {
				prev := got[i-1]
				if dists[prev] > dists[id] || (dists[prev] == dists[id] && prev >= id) {
					t.Fatalf("trial %d: AppendIDs order violated at pos %d", trial, i)
				}
			}
			retained[id] = true
		}
		if len(got) == k {
			for id, d := range dists {
				if !retained[id] && d < threshold {
					t.Fatalf("trial %d: excluded id %d has dist %d below threshold %d",
						trial, id, d, threshold)
				}
			}
		}
	}
}

// TestQuantTopKThresholdMonotone: thresholds must never increase once the
// selector is full — the property the rerank guarantee's excluded-point bound
// depends on.
func TestQuantTopKThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sel := NewQuantTopK(8)
	prev := sel.Threshold()
	if prev != math.MaxInt32 {
		t.Fatalf("initial threshold %d, want MaxInt32", prev)
	}
	full := false
	for i := 0; i < 500; i++ {
		d := int32(rng.Intn(1 << 20))
		if d < sel.Threshold() {
			sel.Add(d, i)
		}
		th := sel.Threshold()
		if full && th > prev {
			t.Fatalf("step %d: threshold rose %d -> %d", i, prev, th)
		}
		full = sel.Len() == 8
		prev = th
	}
	sel.Reset(3)
	if sel.Len() != 0 || sel.Threshold() != math.MaxInt32 {
		t.Fatal("Reset did not restore the empty state")
	}
}

// TestQuantTopKDegenerate: k <= 0 selects nothing and never panics.
func TestQuantTopKDegenerate(t *testing.T) {
	for _, k := range []int{0, -3} {
		sel := NewQuantTopK(k)
		sel.Add(5, 1)
		sel.Add(0, 2)
		if sel.Len() != 0 || len(sel.AppendIDs(nil)) != 0 {
			t.Fatalf("k=%d retained candidates", k)
		}
	}
}

// TestUint8BatchKernelAcceleratedAgrees pins the platform-accelerated batch
// kernel (when one is installed) against the portable Go loop, bit for bit,
// across dims straddling the 16-code SIMD chunk and rows straddling the
// dispatch boundary. On platforms without an accelerated kernel the test
// still exercises the generic pair.
func TestUint8BatchKernelAcceleratedAgrees(t *testing.T) {
	if uint8BatchKernel == nil {
		t.Log("no accelerated batch kernel on this platform; generic only")
	}
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{16, 17, 23, 31, 32, 33, 37, 48, 63, 64, 100, 129} {
		for _, rows := range []int{1, 2, 3, 7, 16, 65} {
			q := randCodes(rng, dim)
			block := randCodes(rng, rows*dim)
			got := make([]int32, rows)
			want := make([]int32, rows)
			Uint8SquaredDistsTo(q, block, got)
			uint8SquaredDistsToGeneric(q, block, want)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("dim %d rows %d row %d: dispatch %d, generic %d",
						dim, rows, r, got[r], want[r])
				}
			}
		}
	}
	// Worst-case magnitudes through the SIMD path: all-zero query against
	// all-255 rows must hit exactly rows x dim x 255^2 with no lane overflow.
	const dim, rows = 37, 9
	q := make([]uint8, dim)
	block := make([]uint8, rows*dim)
	for i := range block {
		block[i] = 255
	}
	out := make([]int32, rows)
	Uint8SquaredDistsTo(q, block, out)
	for r, d := range out {
		if want := int32(dim) * 255 * 255; d != want {
			t.Fatalf("max-distance row %d: got %d, want %d", r, d, want)
		}
	}
}
