package vec

import "fmt"

// This file holds the multi-query (M×N) batch kernels: M query rows scored
// against the same N-row block in one pass, so every block row is loaded once
// and amortized across all M queries instead of M times across M single-query
// sweeps. The bit-exactness contract is inherited wholesale from the 1×N
// kernels: per-query accumulators never mix, and each query's terms are
// consumed in exactly the single-query order (f64 scalar left-to-right, f32
// canonical lane order, SQ8 exact integer), so the output block is
// bit-identical to M independent SquaredDistsTo / SquaredDistsTo32 /
// Uint8SquaredDistsTo calls. The multi layout trades nothing but time.
//
// Layout: qs packs the M queries contiguously (query j occupies
// qs[j*dim:(j+1)*dim]); out is query-major (out[j*rows+r] is query j against
// row r), so each query's distance vector is itself a contiguous slice ready
// for a per-query TopK selection.

// multiWidth is the number of queries one accelerated multi-kernel dispatch
// covers. The AVX2 kernels pin four per-query ymm accumulators and share each
// block-row load across them; callers with M > multiWidth dispatch in groups
// and finish the remainder through the single-query kernel.
const multiWidth = 4

// float32MultiKernel, when non-nil, is a platform-accelerated kernel scoring
// exactly multiWidth contiguous query rows against every row of a block with
// one load of each row chunk (amd64: AVX2, installed by init alongside
// float32BatchKernel). out is query-major with stride ostride:
// out[j*ostride+r]. Every implementation follows the canonical per-query
// accumulation order, so results are bit-identical to the single-query path.
var float32MultiKernel func(qs *float32, dim int, block *float32, out *float32, ostride int, rows int)

// uint8MultiKernel is float32MultiKernel's SQ8 counterpart: multiWidth query
// code rows against a code block, int32 out with stride ostride. Integer
// arithmetic is exact, so every implementation is bit-identical.
var uint8MultiKernel func(qs *uint8, dim int, block *uint8, out *int32, ostride int, rows int)

// HasAcceleratedFloat32Multi reports whether a platform-accelerated
// multi-query kernel backs SquaredDistsToMulti32 on this CPU.
func HasAcceleratedFloat32Multi() bool { return float32MultiKernel != nil }

// HasAcceleratedUint8Multi reports whether a platform-accelerated multi-query
// kernel backs Uint8SquaredDistsToMulti on this CPU.
func HasAcceleratedUint8Multi() bool { return uint8MultiKernel != nil }

// multiDims validates the packed multi-query layout and returns (dim, rows).
// m == 0 is allowed only for empty qs/out (nothing to score).
func multiDims(qsLen, m, blockLen, outLen int) (dim, rows int) {
	if m < 0 {
		panic(fmt.Sprintf("vec: negative query count %d", m))
	}
	if m == 0 {
		if qsLen != 0 || outLen != 0 {
			panic(fmt.Sprintf("vec: qs %d / out %d with zero queries", qsLen, outLen))
		}
		return 0, 0
	}
	if qsLen%m != 0 {
		panic(fmt.Sprintf("vec: qs %d not %d equal query rows", qsLen, m))
	}
	dim = qsLen / m
	if outLen%m != 0 {
		panic(fmt.Sprintf("vec: out %d not %d equal result rows", outLen, m))
	}
	rows = outLen / m
	if blockLen != rows*dim {
		panic(fmt.Sprintf("vec: block %d != %d rows x %d dims", blockLen, rows, dim))
	}
	return dim, rows
}

// SquaredDistsToMulti computes out[j*rows+r] = SqL2(query_j, row_r) for each
// of the m query rows packed in qs against every dimension-strided row of
// block, with rows = len(out)/m. Each query's accumulation order is exactly
// SquaredDistsTo's scalar left-to-right order, so out is bit-identical to m
// independent SquaredDistsTo calls; the rows-outer loop keeps each block row
// cache-hot across all m queries.
func SquaredDistsToMulti(qs []float64, m int, block []float64, out []float64) {
	dim, rows := multiDims(len(qs), m, len(block), len(out))
	if dim == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	for r := 0; r < rows; r++ {
		row := block[r*dim : r*dim+dim : r*dim+dim]
		for j := 0; j < m; j++ {
			q := qs[j*dim : j*dim+dim : j*dim+dim]
			var s float64
			for i, ri := range row {
				d := q[i] - ri
				s += d * d
			}
			out[j*rows+r] = s
		}
	}
}

// SquaredDistsToMulti32 is SquaredDistsToMulti over float32 in the canonical
// float32 accumulation order: out[j*rows+r] = SqL232(query_j, row_r),
// bit-identical to m independent SquaredDistsTo32 calls on every
// implementation (portable and accelerated).
func SquaredDistsToMulti32(qs []float32, m int, block []float32, out []float32) {
	dim, rows := multiDims(len(qs), m, len(block), len(out))
	if dim == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	if rows == 0 {
		return
	}
	if float32MultiKernel != nil && float32BatchKernel != nil && dim >= 8 {
		j := 0
		for ; j+multiWidth <= m; j += multiWidth {
			float32MultiKernel(&qs[j*dim], dim, &block[0], &out[j*rows], rows, rows)
		}
		for ; j < m; j++ {
			float32BatchKernel(&qs[j*dim], dim, &block[0], &out[j*rows], rows)
		}
		return
	}
	float32SquaredDistsToMultiGeneric(qs, m, dim, rows, block, out)
}

// float32SquaredDistsToMultiGeneric is the portable multi-query kernel (and
// the reference the accelerated implementations are tested against).
func float32SquaredDistsToMultiGeneric(qs []float32, m, dim, rows int, block, out []float32) {
	for r := 0; r < rows; r++ {
		row := block[r*dim : r*dim+dim : r*dim+dim]
		for j := 0; j < m; j++ {
			out[j*rows+r] = sqDist32Row(qs[j*dim:j*dim+dim:j*dim+dim], row)
		}
	}
}

// Uint8SquaredDistsToMulti is SquaredDistsToMulti over SQ8 codes:
// out[j*rows+r] = Σ_i (query_j[i]−row_r[i])² in int32 — exact integer
// arithmetic, identical to m independent Uint8SquaredDistsTo calls.
func Uint8SquaredDistsToMulti(qs []uint8, m int, block []uint8, out []int32) {
	dim, rows := multiDims(len(qs), m, len(block), len(out))
	if dim == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	if rows == 0 {
		return
	}
	if uint8MultiKernel != nil && uint8BatchKernel != nil && dim >= 16 {
		j := 0
		for ; j+multiWidth <= m; j += multiWidth {
			uint8MultiKernel(&qs[j*dim], dim, &block[0], &out[j*rows], rows, rows)
		}
		for ; j < m; j++ {
			uint8BatchKernel(&qs[j*dim], dim, &block[0], &out[j*rows], rows)
		}
		return
	}
	uint8SquaredDistsToMultiGeneric(qs, m, dim, rows, block, out)
}

// uint8SquaredDistsToMultiGeneric is the portable multi-query kernel (and the
// reference the accelerated implementations are tested against).
func uint8SquaredDistsToMultiGeneric(qs []uint8, m, dim, rows int, block []uint8, out []int32) {
	for r := 0; r < rows; r++ {
		row := block[r*dim : r*dim+dim : r*dim+dim]
		for j := 0; j < m; j++ {
			q := qs[j*dim : j*dim+dim : j*dim+dim]
			var s0, s1, s2, s3 int32
			i := 0
			for ; i+4 <= dim; i += 4 {
				d0 := int32(q[i]) - int32(row[i])
				d1 := int32(q[i+1]) - int32(row[i+1])
				d2 := int32(q[i+2]) - int32(row[i+2])
				d3 := int32(q[i+3]) - int32(row[i+3])
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
			}
			for ; i < dim; i++ {
				d := int32(q[i]) - int32(row[i])
				s0 += d * d
			}
			out[j*rows+r] = s0 + s1 + s2 + s3
		}
	}
}
