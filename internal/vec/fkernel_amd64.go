//go:build amd64 && gc && !purego && !noasm

package vec

// float32SqDistsAVX2 is the AVX2 batch kernel behind SquaredDistsTo32:
// out[r] = SqL232(q, block[r*dim:(r+1)*dim]) for r in [0, rows). Each
// 8-component chunk subtracts, squares (VSUBPS/VMULPS — never FMA, which
// would skip the product rounding the portable loop performs), and adds into
// one ymm accumulator; the horizontal reduction and the left-to-right scalar
// tail reproduce the canonical float32 accumulation order exactly (see
// kernel32.go), so results are bit-identical to the portable loop.
// Implemented in fkernel_amd64.s.
//
//go:noescape
func float32SqDistsAVX2(q *float32, dim int, block *float32, out *float32, rows int)

// float32SqDistsMulti4AVX2 is the AVX2 multi-query kernel behind
// SquaredDistsToMulti32: four contiguous query rows scored against every row
// of block with one load of each row chunk, out query-major with stride
// ostride. Per query it replays float32SqDistsAVX2's exact dataflow, so the
// results are bit-identical to four single-query calls. Implemented in
// fkernel_amd64.s.
//
//go:noescape
func float32SqDistsMulti4AVX2(qs *float32, dim int, block *float32, out *float32, ostride int, rows int)

func init() {
	if hasAVX2() {
		float32BatchKernel = float32SqDistsAVX2
		float32MultiKernel = float32SqDistsMulti4AVX2
	}
}
