//go:build amd64 && gc && !purego && !noasm

#include "textflag.h"

// func float32SqDistsAVX2(q *float32, dim int, block *float32, out *float32, rows int)
//
// out[r] = Σ_i (q[i]−block[r*dim+i])² in float32, accumulated in the
// canonical lane order (see kernel32.go): component i of the 8-aligned
// prefix feeds ymm lane i%8, the lanes reduce lower+upper halves then
// 64-bit-pair then 32-bit-pair swaps, and the ≤7-component tail adds
// left-to-right in scalar. VSUBPS/VMULPS/VADDPS only — no FMA — so every
// intermediate rounds exactly like the portable Go loop and the two paths
// are bit-identical. Loads never cross a row boundary, so nothing is read
// past the block.
TEXT ·float32SqDistsAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ block+16(FP), DI
	MOVQ out+24(FP), R8
	MOVQ rows+32(FP), R9

	MOVQ DX, R10
	ANDQ $-8, R10             // R10 = dim &^ 7: the SIMD-covered prefix

rowloop:
	TESTQ  R9, R9
	JLE    done
	VXORPS Y0, Y0, Y0         // float32x8 lane accumulator
	XORQ   R11, R11           // i = 0
	CMPQ   R10, $0
	JE     hsum

simd:
	VMOVUPS (SI)(R11*4), Y1   // 8 query components
	VMOVUPS (DI)(R11*4), Y2   // 8 row components
	VSUBPS  Y2, Y1, Y1        // d = q - row
	VMULPS  Y1, Y1, Y1        // d*d (rounded product, as in the Go loop)
	VADDPS  Y1, Y0, Y0
	ADDQ    $8, R11
	CMPQ    R11, R10
	JL      simd

hsum:
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0   // lanes (0+4, 1+5, 2+6, 3+7)
	VPSHUFD      $0x4E, X0, X1
	VADDPS       X1, X0, X0   // lane0 = (0+4)+(2+6), lane1 = (1+5)+(3+7)
	VPSHUFD      $0xB1, X0, X1
	VADDPS       X1, X0, X0   // lane0 = full reduction

scalar:
	CMPQ   R11, DX
	JGE    store
	VMOVSS (SI)(R11*4), X1
	VSUBSS (DI)(R11*4), X1, X1
	VMULSS X1, X1, X1
	VADDSS X1, X0, X0
	INCQ   R11
	JMP    scalar

store:
	VMOVSS X0, (R8)
	ADDQ   $4, R8
	LEAQ   (DI)(DX*4), DI     // next row
	DECQ   R9
	JMP    rowloop

done:
	VZEROUPPER
	RET

// func float32SqDistsMulti4AVX2(qs *float32, dim int, block *float32, out *float32, ostride int, rows int)
//
// Scores FOUR query rows (packed contiguously in qs) against every row of
// block, loading each 8-component row chunk ONCE and reusing it for all four
// queries: out[j*ostride+r] = SqL232(q_j, row_r). Each query accumulates in
// its own ymm register with exactly the single-query kernel's dataflow —
// VSUBPS/VMULPS/VADDPS per chunk (never FMA), the same horizontal reduction,
// a left-to-right scalar tail — so every output is bit-identical to four
// float32SqDistsAVX2 calls. The batch shares loads, never sums.
TEXT ·float32SqDistsMulti4AVX2(SB), NOSPLIT, $0-48
	MOVQ qs+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ block+16(FP), DI
	MOVQ out+24(FP), R8
	MOVQ ostride+32(FP), AX
	MOVQ rows+40(FP), R9

	SHLQ $2, AX               // AX = ostride in bytes
	LEAQ (SI)(DX*4), R12      // q1
	LEAQ (R12)(DX*4), R13     // q2
	LEAQ (R13)(DX*4), R14     // q3
	MOVQ DX, R10
	ANDQ $-8, R10             // R10 = dim &^ 7: the SIMD-covered prefix

mrowloop:
	TESTQ  R9, R9
	JLE    mdone
	VXORPS Y0, Y0, Y0         // q0 lane accumulator
	VXORPS Y1, Y1, Y1         // q1
	VXORPS Y2, Y2, Y2         // q2
	VXORPS Y3, Y3, Y3         // q3
	XORQ   R11, R11           // i = 0
	CMPQ   R10, $0
	JE     mhsum

msimd:
	VMOVUPS (DI)(R11*4), Y4   // 8 row components, loaded once for all queries
	VMOVUPS (SI)(R11*4), Y5
	VSUBPS  Y4, Y5, Y5        // d = q0 - row
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y0, Y0
	VMOVUPS (R12)(R11*4), Y5
	VSUBPS  Y4, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y1, Y1
	VMOVUPS (R13)(R11*4), Y5
	VSUBPS  Y4, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y2, Y2
	VMOVUPS (R14)(R11*4), Y5
	VSUBPS  Y4, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y3, Y3
	ADDQ    $8, R11
	CMPQ    R11, R10
	JL      msimd

mhsum:
	VEXTRACTF128 $1, Y0, X5
	VADDPS       X5, X0, X0
	VPSHUFD      $0x4E, X0, X5
	VADDPS       X5, X0, X0
	VPSHUFD      $0xB1, X0, X5
	VADDPS       X5, X0, X0   // X0 lane0 = q0 reduction
	VEXTRACTF128 $1, Y1, X5
	VADDPS       X5, X1, X1
	VPSHUFD      $0x4E, X1, X5
	VADDPS       X5, X1, X1
	VPSHUFD      $0xB1, X1, X5
	VADDPS       X5, X1, X1
	VEXTRACTF128 $1, Y2, X5
	VADDPS       X5, X2, X2
	VPSHUFD      $0x4E, X2, X5
	VADDPS       X5, X2, X2
	VPSHUFD      $0xB1, X2, X5
	VADDPS       X5, X2, X2
	VEXTRACTF128 $1, Y3, X5
	VADDPS       X5, X3, X3
	VPSHUFD      $0x4E, X3, X5
	VADDPS       X5, X3, X3
	VPSHUFD      $0xB1, X3, X5
	VADDPS       X5, X3, X3

	CMPQ R11, DX
	JGE  mstore
	MOVQ R11, CX              // ≤7-component tails, one query at a time

mtail0:
	CMPQ   CX, DX
	JGE    mtail1i
	VMOVSS (SI)(CX*4), X5
	VSUBSS (DI)(CX*4), X5, X5
	VMULSS X5, X5, X5
	VADDSS X5, X0, X0
	INCQ   CX
	JMP    mtail0

mtail1i:
	MOVQ R11, CX

mtail1:
	CMPQ   CX, DX
	JGE    mtail2i
	VMOVSS (R12)(CX*4), X5
	VSUBSS (DI)(CX*4), X5, X5
	VMULSS X5, X5, X5
	VADDSS X5, X1, X1
	INCQ   CX
	JMP    mtail1

mtail2i:
	MOVQ R11, CX

mtail2:
	CMPQ   CX, DX
	JGE    mtail3i
	VMOVSS (R13)(CX*4), X5
	VSUBSS (DI)(CX*4), X5, X5
	VMULSS X5, X5, X5
	VADDSS X5, X2, X2
	INCQ   CX
	JMP    mtail2

mtail3i:
	MOVQ R11, CX

mtail3:
	CMPQ   CX, DX
	JGE    mstore
	VMOVSS (R14)(CX*4), X5
	VSUBSS (DI)(CX*4), X5, X5
	VMULSS X5, X5, X5
	VADDSS X5, X3, X3
	INCQ   CX
	JMP    mtail3

mstore:
	VMOVSS X0, (R8)
	VMOVSS X1, (R8)(AX*1)
	VMOVSS X2, (R8)(AX*2)
	LEAQ   (R8)(AX*2), BX     // 3*stride is not an x86 scale; hop via 2*stride
	VMOVSS X3, (BX)(AX*1)
	ADDQ   $4, R8
	LEAQ   (DI)(DX*4), DI     // next row
	DECQ   R9
	JMP    mrowloop

mdone:
	VZEROUPPER
	RET
