//go:build amd64 && gc && !purego && !noasm

#include "textflag.h"

// func float32SqDistsAVX2(q *float32, dim int, block *float32, out *float32, rows int)
//
// out[r] = Σ_i (q[i]−block[r*dim+i])² in float32, accumulated in the
// canonical lane order (see kernel32.go): component i of the 8-aligned
// prefix feeds ymm lane i%8, the lanes reduce lower+upper halves then
// 64-bit-pair then 32-bit-pair swaps, and the ≤7-component tail adds
// left-to-right in scalar. VSUBPS/VMULPS/VADDPS only — no FMA — so every
// intermediate rounds exactly like the portable Go loop and the two paths
// are bit-identical. Loads never cross a row boundary, so nothing is read
// past the block.
TEXT ·float32SqDistsAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ block+16(FP), DI
	MOVQ out+24(FP), R8
	MOVQ rows+32(FP), R9

	MOVQ DX, R10
	ANDQ $-8, R10             // R10 = dim &^ 7: the SIMD-covered prefix

rowloop:
	TESTQ  R9, R9
	JLE    done
	VXORPS Y0, Y0, Y0         // float32x8 lane accumulator
	XORQ   R11, R11           // i = 0
	CMPQ   R10, $0
	JE     hsum

simd:
	VMOVUPS (SI)(R11*4), Y1   // 8 query components
	VMOVUPS (DI)(R11*4), Y2   // 8 row components
	VSUBPS  Y2, Y1, Y1        // d = q - row
	VMULPS  Y1, Y1, Y1        // d*d (rounded product, as in the Go loop)
	VADDPS  Y1, Y0, Y0
	ADDQ    $8, R11
	CMPQ    R11, R10
	JL      simd

hsum:
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0   // lanes (0+4, 1+5, 2+6, 3+7)
	VPSHUFD      $0x4E, X0, X1
	VADDPS       X1, X0, X0   // lane0 = (0+4)+(2+6), lane1 = (1+5)+(3+7)
	VPSHUFD      $0xB1, X0, X1
	VADDPS       X1, X0, X0   // lane0 = full reduction

scalar:
	CMPQ   R11, DX
	JGE    store
	VMOVSS (SI)(R11*4), X1
	VSUBSS (DI)(R11*4), X1, X1
	VMULSS X1, X1, X1
	VADDSS X1, X0, X0
	INCQ   R11
	JMP    scalar

store:
	VMOVSS X0, (R8)
	ADDQ   $4, R8
	LEAQ   (DI)(DX*4), DI     // next row
	DECQ   R9
	JMP    rowloop

done:
	VZEROUPPER
	RET
