package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone shares backing array: v=%v", v)
	}
	if !v.Equal(Vector{1, 2, 3}) {
		t.Fatalf("original mutated: %v", v)
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 2}, Vector{1, 2}, true},
		{Vector{1, 2}, Vector{1, 3}, false},
		{Vector{1, 2}, Vector{1, 2, 3}, false},
		{Vector{}, Vector{}, true},
		{nil, Vector{}, true},
	}
	for i, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("case %d: Equal(%v,%v)=%v want %v", i, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := Add(a, b); !got.Equal(Vector{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(Vector{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 2); !got.Equal(Vector{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	// In-place variants mutate the receiver.
	v := a.Clone()
	v.AddInPlace(b)
	if !v.Equal(Vector{5, 7, 9}) {
		t.Errorf("AddInPlace = %v", v)
	}
	v.SubInPlace(b)
	if !v.Equal(a) {
		t.Errorf("SubInPlace = %v", v)
	}
	v.ScaleInPlace(3)
	if !v.Equal(Vector{3, 6, 9}) {
		t.Errorf("ScaleInPlace = %v", v)
	}
}

func TestDistances(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}
	if got := L2(a, b); got != 5 {
		t.Errorf("L2 = %v", got)
	}
	if got := SqL2(a, b); got != 25 {
		t.Errorf("SqL2 = %v", got)
	}
	if got := L1(a, b); got != 7 {
		t.Errorf("L1 = %v", got)
	}
	if got := Linf(a, b); got != 4 {
		t.Errorf("Linf = %v", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Cosine orthogonal = %v", got)
	}
	if got := Cosine(Vector{2, 2}, Vector{5, 5}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Cosine parallel = %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 1}); got != 1 {
		t.Errorf("Cosine zero vector = %v, want 1", got)
	}
}

func TestWeightedDistance(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{1, 2}
	w := Vector{4, 1}
	if got := WeightedSqL2(a, b, w); got != 8 {
		t.Errorf("WeightedSqL2 = %v want 8", got)
	}
	if got := WeightedL2(a, b, w); !almostEqual(got, math.Sqrt(8), 1e-12) {
		t.Errorf("WeightedL2 = %v", got)
	}
	// Unit weights reduce to plain L2.
	if got, want := WeightedSqL2(a, b, Vector{1, 1}), SqL2(a, b); got != want {
		t.Errorf("unit-weight WeightedSqL2 = %v want %v", got, want)
	}
}

func TestCentroid(t *testing.T) {
	vs := []Vector{{0, 0}, {2, 4}, {4, 2}}
	if got := Centroid(vs); !got.Equal(Vector{2, 2}) {
		t.Errorf("Centroid = %v", got)
	}
	// Single element centroid is the element itself (copied).
	c := Centroid([]Vector{{7, 8}})
	if !c.Equal(Vector{7, 8}) {
		t.Errorf("single centroid = %v", c)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Centroid(nil) did not panic")
		}
	}()
	Centroid(nil)
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L2 with mismatched dims did not panic")
		}
	}()
	L2(Vector{1}, Vector{1, 2})
}

func TestNearestIndex(t *testing.T) {
	vs := []Vector{{0, 0}, {5, 5}, {1, 1}}
	idx, d := NearestIndex(Vector{1, 2}, vs, L2)
	if idx != 2 {
		t.Errorf("NearestIndex = %d want 2", idx)
	}
	if !almostEqual(d, 1, 1e-12) {
		t.Errorf("distance = %v want 1", d)
	}
	idx, d = NearestIndex(Vector{1, 2}, nil, L2)
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty NearestIndex = %d,%v", idx, d)
	}
}

func randomVectors(rng *rand.Rand, n, dim int) []Vector {
	vs := make([]Vector, n)
	for i := range vs {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vs[i] = v
	}
	return vs
}

// Property: L2 satisfies the metric axioms on random vectors.
func TestL2MetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		vs := randomVectors(rng, 3, 8)
		a, b, c := vs[0], vs[1], vs[2]
		if L2(a, a) != 0 {
			t.Fatalf("identity violated: %v", L2(a, a))
		}
		if d1, d2 := L2(a, b), L2(b, a); !almostEqual(d1, d2, 1e-12) {
			t.Fatalf("symmetry violated: %v vs %v", d1, d2)
		}
		if L2(a, b) < 0 {
			t.Fatal("negative distance")
		}
		if L2(a, c) > L2(a, b)+L2(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", L2(a, c), L2(a, b), L2(b, c))
		}
	}
}

// Property: centroid minimizes sum of squared L2 distances (first-order
// check: perturbing the centroid never decreases the objective).
func TestCentroidMinimizesSquaredError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	obj := func(c Vector, vs []Vector) float64 {
		var s float64
		for _, v := range vs {
			s += SqL2(c, v)
		}
		return s
	}
	for iter := 0; iter < 100; iter++ {
		vs := randomVectors(rng, 5+rng.Intn(10), 6)
		c := Centroid(vs)
		base := obj(c, vs)
		for trial := 0; trial < 10; trial++ {
			p := c.Clone()
			p[rng.Intn(len(p))] += rng.NormFloat64() * 0.1
			if obj(p, vs) < base-1e-9 {
				t.Fatalf("perturbed centroid beats centroid: %v < %v", obj(p, vs), base)
			}
		}
	}
}

func TestQuickSqL2NonNegativeAndConsistent(t *testing.T) {
	f := func(a, b [12]float64) bool {
		va, vb := Vector(a[:]), Vector(b[:])
		sq := SqL2(va, vb)
		if sq < 0 {
			return false
		}
		l2 := L2(va, vb)
		if math.IsNaN(l2) || math.IsInf(l2, 0) {
			// Extreme quick-generated values can overflow; skip those.
			return true
		}
		return almostEqual(l2*l2, sq, 1e-6*math.Max(1, sq))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b [9]float64) bool {
		va, vb := Vector(a[:]), Vector(b[:])
		got := Sub(Add(va, vb), vb)
		for i := range got {
			if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
				return true // overflow territory, not meaningful
			}
			if !almostEqual(got[i], va[i], 1e-6*math.Max(1, math.Abs(va[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
