// Package vec provides the dense-vector math substrate used throughout the
// query-decomposition CBIR system: distance functions, centroids, per-dimension
// statistics, and corpus normalizers.
//
// All retrieval structures in this repository (the R*-tree, the RFS structure,
// k-means, the baselines) operate on vec.Vector values. Vectors are plain
// []float64 so callers can construct them with composite literals and slice
// tricks; functions in this package never retain references to their inputs
// unless documented otherwise.
package vec

import (
	"fmt"
	"math"
)

// Vector is a point in a d-dimensional feature space.
type Vector []float64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Equal reports whether v and w have identical length and components.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// AddInPlace adds w into v component-wise. It panics if dimensions differ.
func (v Vector) AddInPlace(w Vector) {
	mustSameDim(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace subtracts w from v component-wise. It panics if dimensions differ.
func (v Vector) SubInPlace(w Vector) {
	mustSameDim(v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// ScaleInPlace multiplies every component of v by s.
func (v Vector) ScaleInPlace(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Add returns v + w as a new vector.
func Add(v, w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func Sub(v, w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s*v as a new vector.
func Scale(v Vector, s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Dot returns the inner product of v and w.
func Dot(v, w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// L2 returns the Euclidean distance between v and w.
func L2(v, w Vector) float64 { return math.Sqrt(SqL2(v, w)) }

// SqL2 returns the squared Euclidean distance between v and w. It is the
// preferred comparison key inside search loops because it avoids the sqrt.
func SqL2(v, w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// L1 returns the Manhattan distance between v and w.
func L1(v, w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += math.Abs(v[i] - w[i])
	}
	return s
}

// Linf returns the Chebyshev distance between v and w.
func Linf(v, w Vector) float64 {
	mustSameDim(v, w)
	var m float64
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > m {
			m = d
		}
	}
	return m
}

// WeightedSqL2 returns sum_i w_i (v_i - u_i)^2. Negative weights are invalid
// but not checked; callers construct weights via Stats.InverseVariance or
// similar, which are non-negative by construction.
func WeightedSqL2(v, u, weights Vector) float64 {
	mustSameDim(v, u)
	mustSameDim(v, weights)
	var s float64
	for i := range v {
		d := v[i] - u[i]
		s += weights[i] * d * d
	}
	return s
}

// WeightedL2 returns the square root of WeightedSqL2.
func WeightedL2(v, u, weights Vector) float64 {
	return math.Sqrt(WeightedSqL2(v, u, weights))
}

// Cosine returns the cosine distance 1 - cos(v, w). If either vector has zero
// norm the distance is defined as 1.
func Cosine(v, w Vector) float64 {
	nv, nw := Norm(v), Norm(w)
	if nv == 0 || nw == 0 {
		return 1
	}
	c := Dot(v, w) / (nv * nw)
	// Clamp against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// DistFunc is a distance measure between two equal-dimension vectors.
type DistFunc func(a, b Vector) float64

// Centroid returns the arithmetic mean of the given vectors. It panics if the
// slice is empty or the vectors disagree on dimension.
func Centroid(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: Centroid of empty set")
	}
	c := make(Vector, len(vs[0]))
	for _, v := range vs {
		c.AddInPlace(v)
	}
	c.ScaleInPlace(1 / float64(len(vs)))
	return c
}

// mustSameDim panics with a descriptive message when a and b differ in length.
func mustSameDim(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
}

// NearestIndex returns the index in vs of the vector nearest q under dist,
// along with that distance. It returns (-1, +Inf) for an empty slice.
func NearestIndex(q Vector, vs []Vector, dist DistFunc) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, v := range vs {
		if d := dist(q, v); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
