package vec

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputeStatsKnownValues(t *testing.T) {
	vs := []Vector{{1, 10}, {2, 20}, {3, 30}}
	s := ComputeStats(vs)
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean[0], 2, 1e-12) || !almostEqual(s.Mean[1], 20, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Population variance of {1,2,3} is 2/3.
	if !almostEqual(s.Variance[0], 2.0/3.0, 1e-12) {
		t.Errorf("Variance[0] = %v", s.Variance[0])
	}
	if !almostEqual(s.Variance[1], 200.0/3.0, 1e-9) {
		t.Errorf("Variance[1] = %v", s.Variance[1])
	}
	if s.Min[0] != 1 || s.Max[0] != 3 || s.Min[1] != 10 || s.Max[1] != 30 {
		t.Errorf("Min/Max = %v / %v", s.Min, s.Max)
	}
}

func TestComputeStatsSingleVector(t *testing.T) {
	s := ComputeStats([]Vector{{5, -3}})
	if !s.Mean.Equal(Vector{5, -3}) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Variance[0] != 0 || s.Variance[1] != 0 {
		t.Errorf("Variance = %v, want zeros", s.Variance)
	}
}

func TestComputeStatsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ComputeStats(nil)
}

func TestStdDevAndInverseVariance(t *testing.T) {
	s := ComputeStats([]Vector{{0, 7}, {2, 7}})
	sd := s.StdDev()
	if !almostEqual(sd[0], 1, 1e-12) {
		t.Errorf("StdDev[0] = %v", sd[0])
	}
	if sd[1] != 0 {
		t.Errorf("StdDev[1] = %v", sd[1])
	}
	w := s.InverseVariance(1e-6)
	if w[0] >= w[1] {
		t.Errorf("low-variance dim should receive larger weight: %v", w)
	}
	if math.IsInf(w[1], 0) {
		t.Error("eps guard failed: infinite weight on constant dimension")
	}
}

func TestMinMaxNormalizer(t *testing.T) {
	vs := []Vector{{0, 100, 5}, {10, 200, 5}}
	n := FitMinMax(vs)
	if n.Dim() != 3 {
		t.Fatalf("Dim = %d", n.Dim())
	}
	got := n.Apply(Vector{5, 150, 5})
	want := Vector{0.5, 0.5, 0} // constant dim maps to 0
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Apply[%d] = %v want %v", i, got[i], want[i])
		}
	}
	// All fitted vectors land inside [0,1].
	for _, v := range vs {
		for i, x := range n.Apply(v) {
			if x < 0 || x > 1 {
				t.Errorf("normalized component %d out of range: %v", i, x)
			}
		}
	}
}

func TestZScoreNormalizer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vs := randomVectors(rng, 500, 4)
	// Shift and scale so raw dims have distinct magnitudes.
	for _, v := range vs {
		v[1] = v[1]*100 + 50
		v[2] = v[2]*0.01 - 3
	}
	n := FitZScore(vs)
	out := ApplyAll(n, vs)
	s := ComputeStats(out)
	for i := 0; i < 4; i++ {
		if !almostEqual(s.Mean[i], 0, 1e-9) {
			t.Errorf("normalized mean[%d] = %v", i, s.Mean[i])
		}
		if !almostEqual(s.Variance[i], 1, 1e-6) {
			t.Errorf("normalized variance[%d] = %v", i, s.Variance[i])
		}
	}
}

func TestZScoreConstantDimension(t *testing.T) {
	vs := []Vector{{1, 42}, {2, 42}, {3, 42}}
	n := FitZScore(vs)
	for _, v := range vs {
		if got := n.Apply(v)[1]; got != 0 {
			t.Errorf("constant dim normalized to %v, want 0", got)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatalf("At/Set broken: %+v", m)
	}
	if !m.Row(0).Equal(Vector{1, 0, 2}) {
		t.Errorf("Row(0) = %v", m.Row(0))
	}
	got := m.MulVec(Vector{1, 1, 1})
	if !got.Equal(Vector{3, 3}) {
		t.Errorf("MulVec = %v", got)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 2 || tr.At(1, 1) != 3 {
		t.Errorf("Transpose wrong: %+v", tr)
	}
}

func TestMatrixInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

// Welford vs naive two-pass: results must agree on random data.
func TestStatsMatchTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := randomVectors(rng, 300, 5)
	s := ComputeStats(vs)
	for d := 0; d < 5; d++ {
		var mean float64
		for _, v := range vs {
			mean += v[d]
		}
		mean /= float64(len(vs))
		var varsum float64
		for _, v := range vs {
			varsum += (v[d] - mean) * (v[d] - mean)
		}
		variance := varsum / float64(len(vs))
		if !almostEqual(s.Mean[d], mean, 1e-9) {
			t.Errorf("mean[%d]: welford %v vs twopass %v", d, s.Mean[d], mean)
		}
		if !almostEqual(s.Variance[d], variance, 1e-9) {
			t.Errorf("var[%d]: welford %v vs twopass %v", d, s.Variance[d], variance)
		}
	}
}
