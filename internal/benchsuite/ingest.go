package benchsuite

import (
	"context"
	"sync"
	"testing"

	"qdcbir/internal/seg"
	"qdcbir/internal/vec"
)

// The dynamic-ingest benchmarks price the segmented epoch/snapshot engine:
// the write path (memtable append with its amortized seal) and the read path
// both quiescent and under sustained concurrent writes. The under-writes
// entry is the regression gate for the engine's core promise — queries never
// block on writers — so its ns/op should track the quiescent entry, not the
// write rate. All three are fixture-free: they run over a synthetic
// segmented DB, not the suite's static corpus.
const (
	ingestDim  = 37
	ingestRows = 4096
	ingestSeal = 512 // ingestRows/ingestSeal sealed segments once populated
)

// ingestVectors derives n deterministic rows from the same LCG family as
// leafScanBlock, reshaped into per-row vectors for Insert.
func ingestVectors(n int) []vec.Vector {
	state := uint64(0xC2B2AE3D27D4EB4F)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	out := make([]vec.Vector, n)
	for i := range out {
		v := make(vec.Vector, ingestDim)
		for j := range v {
			v[j] = next()
		}
		out[i] = v
	}
	return out
}

// newIngestDB builds the populated segmented fixture: ingestRows rows sealed
// into ingestRows/ingestSeal segments plus an empty memtable. Auto-compaction
// is off so every run prices the same multi-segment shape.
func newIngestDB(b *testing.B) *seg.DB {
	db, err := seg.New(seg.Config{
		Dim: ingestDim, SealThreshold: ingestSeal,
		MaxSegments: 64, Seed: 5, NodeCapacity: 24,
		DisableAutoCompact: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range ingestVectors(ingestRows) {
		if _, err := db.Insert(v); err != nil {
			db.Close()
			b.Fatal(err)
		}
	}
	return db
}

// benchDynamicInsert prices one insert — a locked memtable append, plus the
// segment build every ingestSeal-th op (R*-tree bulk load over the sealed
// rows), so ns/op is the amortized sustained write cost.
func benchDynamicInsert(b *testing.B, _ *fixture) {
	db, err := seg.New(seg.Config{
		Dim: ingestDim, SealThreshold: ingestSeal,
		MaxSegments: 1 << 30, Seed: 5, NodeCapacity: 24,
		DisableAutoCompact: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	vs := ingestVectors(ingestSeal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert(vs[i%len(vs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDynamicKNN prices a k=10 k-NN across the sealed segments and the
// memtable, pinning and releasing a snapshot per op the way every API-level
// query does.
func benchDynamicKNN(b *testing.B, _ *fixture) {
	db := newIngestDB(b)
	defer db.Close()
	qs := ingestVectors(64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := db.Acquire()
		if _, err := snap.KNNCtx(ctx, qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
		snap.Release()
	}
}

// benchDynamicKNNUnderWrites runs the same k-NN loop while one writer
// goroutine churns insert+delete pairs as fast as it can. Each pair
// tombstones its own row, so seals come out empty and the segment shape
// stays identical to the quiescent benchmark: any ns/op gap between the two
// is pure write interference (snapshot publication and the memtable's
// copy-on-write tombstones), which the engine promises to keep near zero.
func benchDynamicKNNUnderWrites(b *testing.B, _ *fixture) {
	db := newIngestDB(b)
	defer db.Close()
	qs := ingestVectors(64)
	ctx := context.Background()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		vs := ingestVectors(8)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			id, err := db.Insert(vs[i%len(vs)])
			if err != nil {
				return
			}
			if err := db.Delete(id); err != nil {
				return
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := db.Acquire()
		if _, err := snap.KNNCtx(ctx, qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
		snap.Release()
	}
	b.StopTimer()
	close(done)
	wg.Wait()
}
