package benchsuite

// Multi-query (M×N) leaf-sweep benchmarks: the throughput-vs-latency curves
// behind BENCH_batch.json. For each scan mode and each width M, the suite
// prices the same work two ways — one coalesced multi-query dispatch
// (SquaredDistsToMulti and friends: every slab row loaded once, amortized
// across all M queries) against M independent single-query sweeps (the slab
// streamed M times). One op covers M×leafScanRows distances in both shapes,
// so serial ns_per_op ÷ coalesced ns_per_op at a width is exactly the
// aggregate throughput gain the coalescing scheduler buys when it merges M
// co-resident leaf sweeps into one dispatch.
//
// The float64 pair is the control: its multi kernel is the generic rows-outer
// loop (no accelerated multi variant), so its curve shows cache reuse only.
// The float32 pair runs at embedDim, where the slab (8 MB) exceeds L2 and the
// sweep is memory-bound — the regime the multi kernel targets. The SQ8 pair
// runs at the paper's featureDim over the same codes the quantized scan mode
// sweeps.

import (
	"fmt"
	"testing"

	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// batchWidths are the multi-query widths the batch curves sweep.
var batchWidths = []int{1, 4, 8, 16}

// batchEntries generates the coalesced/serial pair for every mode and width.
func batchEntries() []entry {
	var es []entry
	for _, m := range batchWidths {
		m := m
		es = append(es,
			entry{fmt.Sprintf("BenchmarkLeafScanMulti/f64/m=%d", m), benchLeafMultiF64(featureDim, m)},
			entry{fmt.Sprintf("BenchmarkLeafScanMultiSerial/f64/m=%d", m), benchLeafSerialF64(featureDim, m)},
			entry{fmt.Sprintf("BenchmarkLeafScanMulti/f32/m=%d", m), benchLeafMultiF32(embedDim, m)},
			entry{fmt.Sprintf("BenchmarkLeafScanMultiSerial/f32/m=%d", m), benchLeafSerialF32(embedDim, m)},
			entry{fmt.Sprintf("BenchmarkLeafScanMulti/sq8/m=%d", m), benchLeafMultiSQ8(m)},
			entry{fmt.Sprintf("BenchmarkLeafScanMultiSerial/sq8/m=%d", m), benchLeafSerialSQ8(m)},
		)
	}
	return es
}

func init() {
	for _, e := range batchEntries() {
		fixtureFree[e.name] = true
	}
}

// leafScanQueries builds the slab plus m packed query rows drawn from the
// same deterministic distribution (query j occupies qs[j*dim:(j+1)*dim]).
func leafScanQueries(dim, m int) (data []float64, qs []float64) {
	data, _ = leafScanBlock(dim)
	qs = make([]float64, m*dim)
	state := uint64(0xD1B54A32D192ED03)
	for i := range qs {
		state = state*6364136223846793005 + 1442695040888963407
		qs[i] = float64(state>>11) / float64(1<<53)
	}
	return data, qs
}

func benchLeafMultiF64(dim, m int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		data, qs := leafScanQueries(dim, m)
		out := make([]float64, m*leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vec.SquaredDistsToMulti(qs, m, data, out)
		}
	}
}

func benchLeafSerialF64(dim, m int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		data, qs := leafScanQueries(dim, m)
		out := make([]float64, leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < m; j++ {
				vec.SquaredDistsTo(qs[j*dim:(j+1)*dim], data, out)
			}
		}
	}
}

func benchLeafMultiF32(dim, m int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		data, qs := leafScanQueries(dim, m)
		data32 := vec.Narrow32(data, nil)
		qs32 := vec.Narrow32(qs, nil)
		out := make([]float32, m*leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vec.SquaredDistsToMulti32(qs32, m, data32, out)
		}
	}
}

func benchLeafSerialF32(dim, m int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		data, qs := leafScanQueries(dim, m)
		data32 := vec.Narrow32(data, nil)
		qs32 := vec.Narrow32(qs, nil)
		out := make([]float32, leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < m; j++ {
				vec.SquaredDistsTo32(qs32[j*dim:(j+1)*dim], data32, out)
			}
		}
	}
}

// sq8Queries quantizes the slab and encodes the m query rows against its
// trained quantizer, packed like the float layouts.
func sq8Queries(m int) (codes []uint8, qcs []uint8, err error) {
	data, qs := leafScanQueries(featureDim, m)
	qz, err := store.QuantizeBacking(featureDim, data)
	if err != nil {
		return nil, nil, err
	}
	qcs = make([]uint8, 0, m*featureDim)
	for j := 0; j < m; j++ {
		qc, _ := qz.EncodeQuery(vec.Vector(qs[j*featureDim:(j+1)*featureDim]), nil)
		qcs = append(qcs, qc...)
	}
	return qz.Codes(), qcs, nil
}

func benchLeafMultiSQ8(m int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		codes, qcs, err := sq8Queries(m)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]int32, m*leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vec.Uint8SquaredDistsToMulti(qcs, m, codes, out)
		}
	}
}

func benchLeafSerialSQ8(m int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		codes, qcs, err := sq8Queries(m)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]int32, leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < m; j++ {
				vec.Uint8SquaredDistsTo(qcs[j*featureDim:(j+1)*featureDim], codes, out)
			}
		}
	}
}
