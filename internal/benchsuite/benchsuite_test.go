package benchsuite

import (
	"strings"
	"testing"
)

// TestRunFilteredDigestOnly runs the two digest benchmarks (no corpus build)
// and checks the emitted document carries usable numbers.
func TestRunFilteredDigestOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite run (seconds) skipped in -short")
	}
	var lines []string
	f, err := Run(Options{Filter: "WindowedDigest"}, func(format string, args ...any) {
		lines = append(lines, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("filtered suite ran %d benchmarks, want 2", len(f.Benchmarks))
	}
	for _, b := range f.Benchmarks {
		if !strings.Contains(b.Name, "WindowedDigest") {
			t.Errorf("filter leaked %q", b.Name)
		}
		if b.Result == nil || b.Result.NsPerOp <= 0 {
			t.Errorf("%s: no result recorded: %+v", b.Name, b.Result)
		}
	}
	// The corpus-build progress line must not appear for a digest-only run.
	for _, l := range lines {
		if strings.Contains(l, "corpus") {
			t.Errorf("digest-only filter still built the corpus")
		}
	}
	if f.GOOS == "" || f.GOARCH == "" {
		t.Errorf("host identity missing: %+v", f)
	}
}

// TestRunFilteredKernels runs every leaf-scan kernel entry — both precisions
// at both the 37-d feature dim and the 512-d embedding dim — all fixture-free.
func TestRunFilteredKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite run (seconds) skipped in -short")
	}
	var lines []string
	f, err := Run(Options{Filter: "LeafScanKernel"}, func(format string, args ...any) {
		lines = append(lines, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"BenchmarkLeafScanKernel/exact":    false,
		"BenchmarkLeafScanKernel/sq8":      false,
		"BenchmarkLeafScanKernel/f32":      false,
		"BenchmarkLeafScanKernelEmbed/f64": false,
		"BenchmarkLeafScanKernelEmbed/f32": false,
	}
	if len(f.Benchmarks) != len(want) {
		t.Fatalf("filtered suite ran %d benchmarks, want %d", len(f.Benchmarks), len(want))
	}
	for _, b := range f.Benchmarks {
		if _, ok := want[b.Name]; !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		want[b.Name] = true
		if b.Result == nil || b.Result.NsPerOp <= 0 {
			t.Errorf("%s: no result recorded: %+v", b.Name, b.Result)
		}
	}
	for name, ran := range want {
		if !ran {
			t.Errorf("%s missing from the run", name)
		}
	}
	for _, l := range lines {
		if strings.Contains(l, "corpus") {
			t.Errorf("kernel-only filter still built the corpus")
		}
	}
}

// TestRunFilteredBatchKernels runs one width of the multi-query batch curves
// (coalesced and serial, all three modes) fixture-free and checks each pair
// is present with usable numbers — the regression harness's hook on the
// batching speedup (the full M sweep is priced in CI and BENCH_batch.json).
func TestRunFilteredBatchKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite run (seconds) skipped in -short")
	}
	var lines []string
	f, err := Run(Options{Filter: `LeafScanMulti(Serial)?/(f64|f32|sq8)/m=4$`}, func(format string, args ...any) {
		lines = append(lines, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"BenchmarkLeafScanMulti/f64/m=4":       false,
		"BenchmarkLeafScanMultiSerial/f64/m=4": false,
		"BenchmarkLeafScanMulti/f32/m=4":       false,
		"BenchmarkLeafScanMultiSerial/f32/m=4": false,
		"BenchmarkLeafScanMulti/sq8/m=4":       false,
		"BenchmarkLeafScanMultiSerial/sq8/m=4": false,
	}
	if len(f.Benchmarks) != len(want) {
		t.Fatalf("filtered suite ran %d benchmarks, want %d", len(f.Benchmarks), len(want))
	}
	for _, b := range f.Benchmarks {
		if _, ok := want[b.Name]; !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		want[b.Name] = true
		if b.Result == nil || b.Result.NsPerOp <= 0 {
			t.Errorf("%s: no result recorded: %+v", b.Name, b.Result)
		}
	}
	for name, ran := range want {
		if !ran {
			t.Errorf("%s missing from the run", name)
		}
	}
	for _, l := range lines {
		if strings.Contains(l, "corpus") {
			t.Errorf("batch-kernel filter still built the corpus")
		}
	}
}

func TestRunRejectsBadFilter(t *testing.T) {
	if _, err := Run(Options{Filter: "("}, nil); err == nil {
		t.Error("bad regexp accepted")
	}
	if _, err := Run(Options{Filter: "NoSuchBenchmark"}, nil); err == nil {
		t.Error("empty selection accepted")
	}
}
