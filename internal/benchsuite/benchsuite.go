// Package benchsuite is the regression-harness benchmark suite behind
// `qdbench -json` / `-compare`: a fixed set of named benchmarks over the
// retrieval system and the observability layer, run through testing.Benchmark
// (legal outside `go test`) and emitted in the benchjson schema so runs can
// be diffed across commits.
//
// The suite prices the paths this repository's PRs have promised to keep
// fast: the global k-NN read path with and without an Observer (the
// zero-cost-when-nil contract), the full feedback-session finalize fan-out,
// and the sliding-window digest's observe and rotate operations.
package benchsuite

import (
	"fmt"
	"regexp"
	"testing"
	"time"

	"qdcbir"
	"qdcbir/internal/benchjson"
	"qdcbir/internal/obs"
	"qdcbir/internal/rstar"
)

// Options configures a suite run.
type Options struct {
	// Filter selects benchmarks by name (regexp; empty runs everything).
	Filter string
	// Description is stamped into the output document.
	Description string
}

// entry is one suite benchmark. Engine benchmarks share the lazily built
// fixture; digest benchmarks ignore it.
type entry struct {
	name string
	fn   func(b *testing.B, fix *fixture)
}

// fixture is the shared system pair: one uninstrumented, one observed.
type fixture struct {
	plain    *qdcbir.System
	observed *qdcbir.System
	relevant []int // example panel spanning several subconcepts
}

// buildFixture constructs the benchmark corpus: small enough to build in
// about a second, large enough for a multi-level hierarchy and a multi-group
// finalize fan-out.
func buildFixture() (*fixture, error) {
	cfg := qdcbir.SmallConfig()
	cfg.Categories = 8
	cfg.Images = 400
	sys, err := qdcbir.Build(cfg)
	if err != nil {
		return nil, err
	}
	fix := &fixture{
		plain:    sys,
		observed: sys.WithObserver(obs.New(obs.NewRegistry())),
	}
	for i, key := range sys.Corpus().Subconcepts() {
		if i >= 4 {
			break
		}
		for _, id := range sys.Corpus().SubconceptIDs(key)[:3] {
			fix.relevant = append(fix.relevant, id)
		}
	}
	return fix, nil
}

func benchKNN(sys *qdcbir.System) func(b *testing.B, fix *fixture) {
	return func(b *testing.B, _ *fixture) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.KNN(i%sys.Len(), 10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// suite returns the benchmark list over the given fixture-backed systems.
func suite(fix *fixture) []entry {
	return []entry{
		{"BenchmarkSystemKNNObserver/none", benchKNN(fix.plain)},
		{"BenchmarkSystemKNNObserver/live", benchKNN(fix.observed)},
		{"BenchmarkQueryFinalize/observer=none", benchFinalize(fix.plain)},
		{"BenchmarkQueryFinalize/observer=live", benchFinalize(fix.observed)},
		{"BenchmarkWindowedDigestObserve", benchDigestObserve},
		{"BenchmarkWindowedDigestRotate", benchDigestRotate},
		{"BenchmarkPerfettoExport", benchPerfettoExport},
	}
}

// benchFinalize prices the localized finalize fan-out via the engine's
// one-shot query path (grouping, boundary expansion, parallel subqueries,
// serial merge).
func benchFinalize(sys *qdcbir.System) func(b *testing.B, fix *fixture) {
	return func(b *testing.B, fix *fixture) {
		ids := make([]rstar.ItemID, len(fix.relevant))
		for i, id := range fix.relevant {
			ids[i] = rstar.ItemID(id)
		}
		eng := sys.Engine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.QueryByExamples(ids, 60, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchDigestObserve prices the steady-state sample path: no rotation, one
// mutex acquisition plus a bucket scan.
func benchDigestObserve(b *testing.B, _ *fixture) {
	w := obs.NewWindowedHistogram(nil, obs.DefaultSlotDuration, obs.DefaultSlots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(0.0042)
	}
}

// benchDigestRotate prices the worst-case sample path: every observation
// lands one tick past the previous one, forcing a slot rotation.
func benchDigestRotate(b *testing.B, _ *fixture) {
	w := obs.NewWindowedHistogram(nil, obs.DefaultSlotDuration, obs.DefaultSlots)
	base := time.Unix(1_000_000, 0)
	tick := 0
	w.SetClock(func() time.Time {
		return base.Add(time.Duration(tick) * obs.DefaultSlotDuration)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick++
		w.Observe(0.0042)
	}
}

// benchPerfettoExport prices rendering a full trace ring as trace-event JSON.
func benchPerfettoExport(b *testing.B, _ *fixture) {
	o := obs.New(nil)
	for i := 0; i < obs.DefaultTraceCap; i++ {
		tr := o.StartTrace("query")
		o.FinalizeDone(tr, obs.FinalizeSpan{
			K: 20, Subqueries: 3, DurationNS: 1e6,
			Subspans: []obs.SubquerySpan{{Node: 1, DurationNS: 1e5}, {Node: 2, DurationNS: 2e5}, {Node: 3, DurationNS: 3e5}},
		})
	}
	traces := o.Traces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs := obs.PerfettoEvents(traces); len(evs) == 0 {
			b.Fatal("no events")
		}
	}
}

// needsFixture reports whether any selected benchmark touches the engine
// fixture, so filtered digest-only runs skip the corpus build.
func needsFixture(names []string) bool {
	for _, n := range names {
		if n == "BenchmarkWindowedDigestObserve" || n == "BenchmarkWindowedDigestRotate" ||
			n == "BenchmarkPerfettoExport" {
			continue
		}
		return true
	}
	return false
}

// Run executes the suite (optionally filtered) and returns the results as a
// benchjson document. progress, when non-nil, receives one line per
// benchmark.
func Run(opts Options, progress func(format string, args ...any)) (*benchjson.File, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	var filter *regexp.Regexp
	if opts.Filter != "" {
		var err error
		if filter, err = regexp.Compile(opts.Filter); err != nil {
			return nil, fmt.Errorf("benchsuite: bad filter: %w", err)
		}
	}
	// Select against a fixture-less suite first so a digest-only filter can
	// skip the corpus build entirely.
	var selected []string
	for _, e := range suite(&fixture{}) {
		if filter == nil || filter.MatchString(e.name) {
			selected = append(selected, e.name)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("benchsuite: filter %q selects no benchmarks", opts.Filter)
	}
	fix := &fixture{}
	if needsFixture(selected) {
		progress("building benchmark corpus...")
		var err error
		if fix, err = buildFixture(); err != nil {
			return nil, err
		}
	}
	desc := opts.Description
	if desc == "" {
		desc = "qdbench regression-suite run"
	}
	out := benchjson.NewFile(desc)
	sel := make(map[string]bool, len(selected))
	for _, n := range selected {
		sel[n] = true
	}
	for _, e := range suite(fix) {
		if !sel[e.name] {
			continue
		}
		fn := e.fn
		progress("running %s...", e.name)
		r := testing.Benchmark(func(b *testing.B) { fn(b, fix) })
		out.Benchmarks = append(out.Benchmarks, benchjson.Benchmark{
			Name: e.name,
			Result: &benchjson.Metrics{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			},
		})
		progress("  %s: %d iterations, %.0f ns/op", e.name,
			r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}
	return out, nil
}
