// Package benchsuite is the regression-harness benchmark suite behind
// `qdbench -json` / `-compare`: a fixed set of named benchmarks over the
// retrieval system and the observability layer, run through testing.Benchmark
// (legal outside `go test`) and emitted in the benchjson schema so runs can
// be diffed across commits.
//
// The suite prices the paths this repository's PRs have promised to keep
// fast: the global k-NN read path with and without an Observer (the
// zero-cost-when-nil contract), the full feedback-session finalize fan-out,
// the multi-query batch kernels against M independent single-query sweeps
// (batch.go), and the sliding-window digest's observe and rotate operations.
package benchsuite

import (
	"fmt"
	"regexp"
	"testing"
	"time"

	"qdcbir"
	"qdcbir/internal/benchjson"
	"qdcbir/internal/obs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// Options configures a suite run.
type Options struct {
	// Filter selects benchmarks by name (regexp; empty runs everything).
	Filter string
	// Description is stamped into the output document.
	Description string
}

// entry is one suite benchmark. Engine benchmarks share the lazily built
// fixture; digest benchmarks ignore it.
type entry struct {
	name string
	fn   func(b *testing.B, fix *fixture)
}

// fixture is the shared system set: one uninstrumented, one observed, one
// running the SQ8 two-phase scan, and one scanning at float32 precision, all
// over the same corpus.
type fixture struct {
	plain     *qdcbir.System
	observed  *qdcbir.System
	quantized *qdcbir.System
	float32p  *qdcbir.System
	relevant  []int // example panel spanning several subconcepts
}

// buildFixture constructs the benchmark corpus: small enough to build in
// about a second, large enough for a multi-level hierarchy and a multi-group
// finalize fan-out.
func buildFixture() (*fixture, error) {
	cfg := qdcbir.SmallConfig()
	cfg.Categories = 8
	cfg.Images = 400
	sys, err := qdcbir.Build(cfg)
	if err != nil {
		return nil, err
	}
	qcfg := cfg
	qcfg.Quantized = true
	qsys, err := qdcbir.Build(qcfg)
	if err != nil {
		return nil, err
	}
	fcfg := cfg
	fcfg.Float32 = true
	fsys, err := qdcbir.Build(fcfg)
	if err != nil {
		return nil, err
	}
	fix := &fixture{
		plain:     sys,
		observed:  sys.WithObserver(obs.New(obs.NewRegistry())),
		quantized: qsys,
		float32p:  fsys,
	}
	for i, key := range sys.Corpus().Subconcepts() {
		if i >= 4 {
			break
		}
		for _, id := range sys.Corpus().SubconceptIDs(key)[:3] {
			fix.relevant = append(fix.relevant, id)
		}
	}
	return fix, nil
}

func benchKNN(sys *qdcbir.System) func(b *testing.B, fix *fixture) {
	return func(b *testing.B, _ *fixture) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.KNN(i%sys.Len(), 10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// suite returns the benchmark list over the given fixture-backed systems
// (the static list plus the generated multi-query batch curves, batch.go).
func suite(fix *fixture) []entry {
	es := []entry{
		{"BenchmarkSystemKNNObserver/none", benchKNN(fix.plain)},
		{"BenchmarkSystemKNNObserver/live", benchKNN(fix.observed)},
		{"BenchmarkSystemKNNScan/exact", benchKNN(fix.plain)},
		{"BenchmarkSystemKNNScan/sq8", benchKNN(fix.quantized)},
		{"BenchmarkSystemKNNScan/f32", benchKNN(fix.float32p)},
		{"BenchmarkLeafScanKernel/exact", benchLeafScanF64(featureDim)},
		{"BenchmarkLeafScanKernel/sq8", benchLeafScanSQ8},
		{"BenchmarkLeafScanKernel/f32", benchLeafScanF32(featureDim)},
		{"BenchmarkLeafScanKernelEmbed/f64", benchLeafScanF64(embedDim)},
		{"BenchmarkLeafScanKernelEmbed/f32", benchLeafScanF32(embedDim)},
		{"BenchmarkScanTableFootprint/exact", benchScanTableExact},
		{"BenchmarkScanTableFootprint/sq8", benchScanTableSQ8},
		{"BenchmarkDynamicInsert", benchDynamicInsert},
		{"BenchmarkDynamicKNN/quiescent", benchDynamicKNN},
		{"BenchmarkDynamicKNN/under-writes", benchDynamicKNNUnderWrites},
		{"BenchmarkQueryFinalize/observer=none", benchFinalize(fix.plain)},
		{"BenchmarkQueryFinalize/observer=live", benchFinalize(fix.observed)},
		{"BenchmarkWindowedDigestObserve", benchDigestObserve},
		{"BenchmarkWindowedDigestRotate", benchDigestRotate},
		{"BenchmarkPerfettoExport", benchPerfettoExport},
	}
	return append(es, batchEntries()...)
}

// benchFinalize prices the localized finalize fan-out via the engine's
// one-shot query path (grouping, boundary expansion, parallel subqueries,
// serial merge).
func benchFinalize(sys *qdcbir.System) func(b *testing.B, fix *fixture) {
	return func(b *testing.B, fix *fixture) {
		ids := make([]rstar.ItemID, len(fix.relevant))
		for i, id := range fix.relevant {
			ids[i] = rstar.ItemID(id)
		}
		eng := sys.Engine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.QueryByExamples(ids, 60, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// The leaf-scan kernel benchmarks price one full leaf-block distance sweep —
// the inner loop of every k-NN — over a synthetic slab, large enough to
// stream from memory the way a big leaf run does. One op = one distance per
// row, every row. The slab dimension is a parameter: featureDim matches the
// paper's extractor, embedDim matches imported embedding corpora.
const (
	leafScanRows = 4096
	featureDim   = 37
	embedDim     = 512
)

// leafScanBlock builds the deterministic synthetic slab and a query drawn
// from the same distribution.
func leafScanBlock(dim int) ([]float64, vec.Vector) {
	data := make([]float64, leafScanRows*dim)
	// Cheap deterministic LCG: no seeding differences across runs.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := range data {
		data[i] = next()
	}
	q := make(vec.Vector, dim)
	for i := range q {
		q[i] = next()
	}
	return data, q
}

// benchLeafScanF64 prices the float64 batch kernel over a dim-wide slab.
func benchLeafScanF64(dim int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		data, q := leafScanBlock(dim)
		out := make([]float64, leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vec.SquaredDistsTo(q, data, out)
		}
	}
}

// benchLeafScanF32 prices the float32 batch kernel over the same rows
// narrowed once up front — the sweep Config.Float32 substitutes for the
// float64 kernel.
func benchLeafScanF32(dim int) func(b *testing.B, _ *fixture) {
	return func(b *testing.B, _ *fixture) {
		data, q := leafScanBlock(dim)
		data32 := vec.Narrow32(data, nil)
		q32 := vec.Narrow32(q, nil)
		out := make([]float32, leafScanRows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vec.SquaredDistsTo32(q32, data32, out)
		}
	}
}

// benchLeafScanSQ8 prices the uint8 batch kernel over the same rows: the
// quantized sweep the SQ8 path substitutes for the float kernel.
func benchLeafScanSQ8(b *testing.B, _ *fixture) {
	data, q := leafScanBlock(featureDim)
	qz, err := store.QuantizeBacking(featureDim, data)
	if err != nil {
		b.Fatal(err)
	}
	qc, _ := qz.EncodeQuery(q, nil)
	out := make([]int32, leafScanRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.Uint8SquaredDistsTo(qc, qz.Codes(), out)
	}
}

// benchScanTableExact materializes the float64 scan table each op; its B/op
// is the per-table memory footprint of the exact path.
func benchScanTableExact(b *testing.B, _ *fixture) {
	data, _ := leafScanBlock(featureDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := make([]float64, len(data))
		copy(tbl, data)
		if tbl[0] != data[0] {
			b.Fatal("copy failed")
		}
	}
}

// benchScanTableSQ8 materializes the SQ8 codes table each op; comparing its
// B/op against the exact variant shows the 8x footprint reduction.
func benchScanTableSQ8(b *testing.B, _ *fixture) {
	data, _ := leafScanBlock(featureDim)
	qz, err := store.QuantizeBacking(featureDim, data)
	if err != nil {
		b.Fatal(err)
	}
	codes := qz.Codes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := make([]uint8, len(codes))
		copy(tbl, codes)
		if tbl[0] != codes[0] {
			b.Fatal("copy failed")
		}
	}
}

// benchDigestObserve prices the steady-state sample path: no rotation, one
// mutex acquisition plus a bucket scan.
func benchDigestObserve(b *testing.B, _ *fixture) {
	w := obs.NewWindowedHistogram(nil, obs.DefaultSlotDuration, obs.DefaultSlots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(0.0042)
	}
}

// benchDigestRotate prices the worst-case sample path: every observation
// lands one tick past the previous one, forcing a slot rotation.
func benchDigestRotate(b *testing.B, _ *fixture) {
	w := obs.NewWindowedHistogram(nil, obs.DefaultSlotDuration, obs.DefaultSlots)
	base := time.Unix(1_000_000, 0)
	tick := 0
	w.SetClock(func() time.Time {
		return base.Add(time.Duration(tick) * obs.DefaultSlotDuration)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick++
		w.Observe(0.0042)
	}
}

// benchPerfettoExport prices rendering a full trace ring as trace-event JSON.
func benchPerfettoExport(b *testing.B, _ *fixture) {
	o := obs.New(nil)
	for i := 0; i < obs.DefaultTraceCap; i++ {
		tr := o.StartTrace("query")
		o.FinalizeDone(tr, obs.FinalizeSpan{
			K: 20, Subqueries: 3, DurationNS: 1e6,
			Subspans: []obs.SubquerySpan{{Node: 1, DurationNS: 1e5}, {Node: 2, DurationNS: 2e5}, {Node: 3, DurationNS: 3e5}},
		})
	}
	traces := o.Traces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs := obs.PerfettoEvents(traces); len(evs) == 0 {
			b.Fatal("no events")
		}
	}
}

// fixtureFree names the benchmarks that never touch the engine fixture
// (digest, export, and synthetic-block kernels), so filtered runs over them
// skip the corpus build.
var fixtureFree = map[string]bool{
	"BenchmarkWindowedDigestObserve":    true,
	"BenchmarkWindowedDigestRotate":     true,
	"BenchmarkPerfettoExport":           true,
	"BenchmarkLeafScanKernel/exact":     true,
	"BenchmarkLeafScanKernel/sq8":       true,
	"BenchmarkLeafScanKernel/f32":       true,
	"BenchmarkLeafScanKernelEmbed/f64":  true,
	"BenchmarkLeafScanKernelEmbed/f32":  true,
	"BenchmarkScanTableFootprint/exact": true,
	"BenchmarkScanTableFootprint/sq8":   true,
	"BenchmarkDynamicInsert":            true,
	"BenchmarkDynamicKNN/quiescent":     true,
	"BenchmarkDynamicKNN/under-writes":  true,
}

// needsFixture reports whether any selected benchmark touches the engine
// fixture, so filtered fixture-free runs skip the corpus build.
func needsFixture(names []string) bool {
	for _, n := range names {
		if !fixtureFree[n] {
			return true
		}
	}
	return false
}

// Run executes the suite (optionally filtered) and returns the results as a
// benchjson document. progress, when non-nil, receives one line per
// benchmark.
func Run(opts Options, progress func(format string, args ...any)) (*benchjson.File, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	var filter *regexp.Regexp
	if opts.Filter != "" {
		var err error
		if filter, err = regexp.Compile(opts.Filter); err != nil {
			return nil, fmt.Errorf("benchsuite: bad filter: %w", err)
		}
	}
	// Select against a fixture-less suite first so a digest-only filter can
	// skip the corpus build entirely.
	var selected []string
	for _, e := range suite(&fixture{}) {
		if filter == nil || filter.MatchString(e.name) {
			selected = append(selected, e.name)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("benchsuite: filter %q selects no benchmarks", opts.Filter)
	}
	fix := &fixture{}
	if needsFixture(selected) {
		progress("building benchmark corpus...")
		var err error
		if fix, err = buildFixture(); err != nil {
			return nil, err
		}
	}
	desc := opts.Description
	if desc == "" {
		desc = "qdbench regression-suite run"
	}
	out := benchjson.NewFile(desc)
	sel := make(map[string]bool, len(selected))
	for _, n := range selected {
		sel[n] = true
	}
	for _, e := range suite(fix) {
		if !sel[e.name] {
			continue
		}
		fn := e.fn
		progress("running %s...", e.name)
		r := testing.Benchmark(func(b *testing.B) { fn(b, fix) })
		out.Benchmarks = append(out.Benchmarks, benchjson.Benchmark{
			Name: e.name,
			Result: &benchjson.Metrics{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			},
		})
		progress("  %s: %d iterations, %.0f ns/op", e.name,
			r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}
	return out, nil
}
