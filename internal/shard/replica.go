package shard

import (
	"context"
	"fmt"
	"math"
	"sort"

	"qdcbir/internal/vec"
)

// Neighbor is one restricted-search result: a global image ID and its
// distance. Distances are exactly the values the single-node tree search
// produces for the same (query, image) pair — float64 sqrt of the kernel's
// squared distance, computed at the store's precision — so per-shard lists
// merge into the single-node ranking without re-scoring.
type Neighbor struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// LocalRows supplies a shard's stored feature rows to NewReplica, decoupling
// the replica from whatever loaded the archive. At must return the exact
// float64 view the single-node engine reads for the row (for float32
// corpora, the exact widening). Labels is optional per-row ground truth.
type LocalRows struct {
	Dim    int
	N      int
	F32    bool // rows originate from a float32 store
	At     func(li int) []float64
	Labels []string
}

// Replica is one shard loaded for serving: the scatter-gather machinery over
// the local subset — the full single-node topology and a slab of the local
// rows grouped by full-tree leaf, so any single-node subtree maps to a
// contiguous row range.
type Replica struct {
	meta    Meta
	topo    *Topology
	globals []int
	localOf map[int]int // global ID -> local row
	leafID  []uint64    // full-tree leaf per local row
	labels  []string    // per local row (may be nil)
	rowOf   []int       // local row -> slab row

	dim     int
	f32     bool
	slab    []float64 // local rows in (full-tree leaf pre-order, global ID) order
	slab32  []float32 // float32 mirror (f32 precision archives only)
	slabGID []int     // global ID per slab row
	ranges  [][2]int  // per topology node index: slab row range [lo,hi)
}

// NewReplica assembles a replica from a decoded archive and its local rows.
func NewReplica(a *Archive, rows LocalRows) (*Replica, error) {
	if err := a.Topo.Index(); err != nil {
		return nil, err
	}
	if len(a.Globals) != len(a.LeafID) {
		return nil, fmt.Errorf("shard: %d globals but %d leaf assignments", len(a.Globals), len(a.LeafID))
	}
	if rows.N != len(a.Globals) {
		return nil, fmt.Errorf("shard: %d rows supplied, archive lists %d", rows.N, len(a.Globals))
	}
	if rows.Dim != a.Meta.Dim {
		return nil, fmt.Errorf("shard: row dim %d, archive says %d", rows.Dim, a.Meta.Dim)
	}
	r := &Replica{
		meta:    a.Meta,
		topo:    a.Topo,
		globals: a.Globals,
		localOf: make(map[int]int, len(a.Globals)),
		leafID:  a.LeafID,
		labels:  rows.Labels,
		dim:     rows.Dim,
		f32:     rows.F32,
	}
	for li, gid := range a.Globals {
		r.localOf[gid] = li
	}

	// Group local rows by full-tree leaf. Globals is ascending, so each
	// member list is ascending by global ID — the slab's tie-break order.
	members := make(map[uint64][]int)
	for li, leaf := range a.LeafID {
		if _, ok := a.Topo.IdxOf(leaf); !ok {
			return nil, fmt.Errorf("shard: image %d assigned to unknown leaf %d", a.Globals[li], leaf)
		}
		members[leaf] = append(members[leaf], li)
	}
	// Pre-order DFS: every subtree's local rows become one contiguous slab
	// range, so a subtree-restricted search is a flat kernel sweep.
	order := make([]int, 0, len(a.Globals))
	r.ranges = make([][2]int, len(a.Topo.Nodes))
	var dfs func(i int)
	dfs = func(i int) {
		lo := len(order)
		if a.Topo.Nodes[i].Leaf {
			order = append(order, members[a.Topo.Nodes[i].ID]...)
		} else {
			for _, c := range a.Topo.Children(i) {
				dfs(c)
			}
		}
		r.ranges[i] = [2]int{lo, len(order)}
	}
	dfs(a.Topo.Root())
	if len(order) != len(a.Globals) {
		return nil, fmt.Errorf("shard: slab covers %d of %d rows (leaf table inconsistent)", len(order), len(a.Globals))
	}
	r.slab = make([]float64, len(order)*r.dim)
	r.slabGID = make([]int, len(order))
	r.rowOf = make([]int, len(order))
	for row, li := range order {
		copy(r.slab[row*r.dim:(row+1)*r.dim], rows.At(li))
		r.slabGID[row] = a.Globals[li]
		r.rowOf[li] = row
	}
	if r.f32 {
		// Narrowing the widened float64 view restores the original float32
		// bits, so the mirror matches the tree's own f32 slab row-for-row.
		r.slab32 = vec.Narrow32(r.slab, nil)
	}
	return r, nil
}

// Meta returns the shard identity.
func (r *Replica) Meta() Meta { return r.meta }

// Topo returns the full single-node topology (shared; do not modify).
func (r *Replica) Topo() *Topology { return r.topo }

// Owns reports whether the image's row is stored on this shard.
func (r *Replica) Owns(gid int) bool { _, ok := r.localOf[gid]; return ok }

// Point is one locally stored image: its full-tree leaf and feature vector,
// which routers fetch to plan finalize rounds.
type Point struct {
	ID    int       `json:"id"`
	Leaf  uint64    `json:"leaf"`
	Vec   []float64 `json:"vec"`
	Label string    `json:"label,omitempty"`
}

// PointInfo returns a locally stored image's planning record. The vector is
// the exact float64 view the single-node engine would read (for float32
// corpora, the exact widening), so router-side centroid and boundary
// arithmetic reproduces the single-node values bit-for-bit.
func (r *Replica) PointInfo(gid int) (Point, bool) {
	li, ok := r.localOf[gid]
	if !ok {
		return Point{}, false
	}
	row := r.rowOf[li]
	return Point{
		ID:    gid,
		Leaf:  r.leafID[li],
		Vec:   append([]float64(nil), r.slab[row*r.dim:(row+1)*r.dim]...),
		Label: r.localLabel(li),
	}, true
}

func (r *Replica) localLabel(li int) string {
	if li >= 0 && li < len(r.labels) {
		return r.labels[li]
	}
	return ""
}

// Labeler resolves image labels: locally stored images from the shard's
// ground truth, everything else through the topology's representative-label
// table (displays only ever show representatives).
func (r *Replica) Labeler() func(id int) string {
	return func(id int) string {
		if li, ok := r.localOf[id]; ok {
			return r.localLabel(li)
		}
		return r.topo.RepLabels[id]
	}
}

// SearchNode runs a k-NN search over the shard's rows restricted to the
// single-node subtree rooted at nodeID. The result is ascending by
// (distance, global ID) — the same total order the single-node search's
// stabilized output uses — with distances computed by the same batch kernels
// at the same precision. A non-nil weights vector selects the weighted
// float64 path, exactly as core.localKNN does.
func (r *Replica) SearchNode(ctx context.Context, nodeID uint64, q vec.Vector, weights []float64, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: invalid k=%d", k)
	}
	if len(q) != r.dim {
		return nil, fmt.Errorf("shard: query dim %d != corpus dim %d", len(q), r.dim)
	}
	if weights != nil && len(weights) != r.dim {
		return nil, fmt.Errorf("shard: weight dim %d != corpus dim %d", len(weights), r.dim)
	}
	idx, ok := r.topo.IdxOf(nodeID)
	if !ok {
		return nil, fmt.Errorf("shard: unknown search node %d", nodeID)
	}
	lo, hi := r.ranges[idx][0], r.ranges[idx][1]
	if lo == hi {
		return nil, nil
	}
	sel := newTopSelect(k)
	const chunk = 1024
	switch {
	case weights != nil:
		scratch := make([]float64, chunk)
		for base := lo; base < hi; base += chunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := base + chunk
			if end > hi {
				end = hi
			}
			out := scratch[:end-base]
			vec.WeightedSquaredDistsTo(q, vec.Vector(weights), r.slab[base*r.dim:end*r.dim], out)
			for i, d := range out {
				sel.add(d, r.slabGID[base+i])
			}
		}
	case r.f32:
		q32 := vec.Narrow32(q, nil)
		scratch := make([]float32, chunk)
		for base := lo; base < hi; base += chunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := base + chunk
			if end > hi {
				end = hi
			}
			out := scratch[:end-base]
			vec.SquaredDistsTo32(q32, r.slab32[base*r.dim:end*r.dim], out)
			for i, d := range out {
				// Widening float32 to float64 is exact and order-preserving,
				// so one float64 selector serves both precisions; the final
				// Dist is math.Sqrt(float64(d32)) — the f32 path's formula.
				sel.add(float64(d), r.slabGID[base+i])
			}
		}
	default:
		scratch := make([]float64, chunk)
		for base := lo; base < hi; base += chunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := base + chunk
			if end > hi {
				end = hi
			}
			out := scratch[:end-base]
			vec.SquaredDistsTo(q, r.slab[base*r.dim:end*r.dim], out)
			for i, d := range out {
				sel.add(d, r.slabGID[base+i])
			}
		}
	}
	cands := sel.sorted()
	ns := make([]Neighbor, len(cands))
	for i, c := range cands {
		ns[i] = Neighbor{ID: c.gid, Dist: math.Sqrt(c.d)}
	}
	return ns, nil
}

// SearchNodeBatch answers several k-NN searches restricted to the SAME
// single-node subtree in one pass over the shard's rows: each slab chunk is
// loaded once and scored against every query by the multi-query kernels, with
// one independent bounded selector per query. Per query the result is
// bit-identical to SearchNode — same kernels, same admission order, same
// (distance, global ID) total order — so coalescing concurrent sweeps changes
// throughput, never answers. Weighted searches have no multi kernel and must
// stay on SearchNode.
func (r *Replica) SearchNodeBatch(ctx context.Context, nodeID uint64, qs []vec.Vector, ks []int) ([][]Neighbor, error) {
	if len(qs) != len(ks) {
		return nil, fmt.Errorf("shard: %d queries but %d ks", len(qs), len(ks))
	}
	sels := make([]*topSelect, len(qs))
	for j, q := range qs {
		if ks[j] <= 0 {
			return nil, fmt.Errorf("shard: invalid k=%d", ks[j])
		}
		if len(q) != r.dim {
			return nil, fmt.Errorf("shard: query dim %d != corpus dim %d", len(q), r.dim)
		}
		sels[j] = newTopSelect(ks[j])
	}
	idx, ok := r.topo.IdxOf(nodeID)
	if !ok {
		return nil, fmt.Errorf("shard: unknown search node %d", nodeID)
	}
	out := make([][]Neighbor, len(qs))
	lo, hi := r.ranges[idx][0], r.ranges[idx][1]
	m := len(qs)
	if lo != hi && m > 0 {
		const chunk = 1024
		if r.f32 {
			qbuf := make([]float32, m*r.dim)
			for j, q := range qs {
				vec.Narrow32(q, qbuf[j*r.dim:(j+1)*r.dim:(j+1)*r.dim])
			}
			scratch := make([]float32, m*chunk)
			for base := lo; base < hi; base += chunk {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				end := base + chunk
				if end > hi {
					end = hi
				}
				rows := end - base
				db := scratch[:m*rows]
				vec.SquaredDistsToMulti32(qbuf, m, r.slab32[base*r.dim:end*r.dim], db)
				for j := 0; j < m; j++ {
					col := db[j*rows : (j+1)*rows]
					for i, d := range col {
						sels[j].add(float64(d), r.slabGID[base+i])
					}
				}
			}
		} else {
			qbuf := make([]float64, m*r.dim)
			for j, q := range qs {
				copy(qbuf[j*r.dim:(j+1)*r.dim], q)
			}
			scratch := make([]float64, m*chunk)
			for base := lo; base < hi; base += chunk {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				end := base + chunk
				if end > hi {
					end = hi
				}
				rows := end - base
				db := scratch[:m*rows]
				vec.SquaredDistsToMulti(qbuf, m, r.slab[base*r.dim:end*r.dim], db)
				for j := 0; j < m; j++ {
					col := db[j*rows : (j+1)*rows]
					for i, d := range col {
						sels[j].add(d, r.slabGID[base+i])
					}
				}
			}
		}
	}
	for j := range sels {
		cands := sels[j].sorted()
		ns := make([]Neighbor, len(cands))
		for i, c := range cands {
			ns[i] = Neighbor{ID: c.gid, Dist: math.Sqrt(c.d)}
		}
		out[j] = ns
	}
	return out, nil
}

// MergeNeighbors merges per-shard restricted-search results into the global
// top-k under the canonical (distance, ID) order. Shards hold disjoint rows,
// so no deduplication is needed; because every list is itself the k smallest
// of its shard, the merged prefix equals the single-node top-k.
func MergeNeighbors(lists [][]Neighbor, k int) []Neighbor {
	var all []Neighbor
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// cand is one bounded-selection entry: squared distance and global ID.
type cand struct {
	d   float64
	gid int
}

// topSelect keeps the k smallest candidates under the (distance, ID) order
// via a bounded max-heap (root = current worst).
type topSelect struct {
	k int
	h []cand
}

func newTopSelect(k int) *topSelect { return &topSelect{k: k} }

// worse reports a > b under the (distance, ID) order.
func worse(a, b cand) bool {
	if a.d != b.d {
		return a.d > b.d
	}
	return a.gid > b.gid
}

func (s *topSelect) add(d float64, gid int) {
	c := cand{d: d, gid: gid}
	if len(s.h) < s.k {
		s.h = append(s.h, c)
		// sift up
		i := len(s.h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(s.h[i], s.h[p]) {
				break
			}
			s.h[i], s.h[p] = s.h[p], s.h[i]
			i = p
		}
		return
	}
	if !worse(s.h[0], c) {
		return
	}
	s.h[0] = c
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(s.h) && worse(s.h[l], s.h[big]) {
			big = l
		}
		if r < len(s.h) && worse(s.h[r], s.h[big]) {
			big = r
		}
		if big == i {
			break
		}
		s.h[i], s.h[big] = s.h[big], s.h[i]
		i = big
	}
}

func (s *topSelect) sorted() []cand {
	out := append([]cand(nil), s.h...)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}
