// Package shard distributes a built retrieval system across independent
// serving processes: a deterministic consistent-hash partitioning over image
// IDs, a slicing step that packages each partition as a self-contained shard
// archive, a replica-side restricted search over the partition, and a
// scatter-gather finalize planner whose merged output is bit-identical to the
// single-node result (see DESIGN.md §13 for the exactness argument).
//
// The design keys everything off one observation: the Query Decomposition
// finalize phase is already N independent localized k-NN subqueries whose
// per-image distances depend only on the (query point, image vector) pair —
// never on which tree, or which machine, evaluated them. Each shard therefore
// carries the full single-node hierarchy as a compact topology table and its
// own subset of the vectors; a subtree-restricted search on a shard scans the
// shard's rows that fall under the subtree, and merging the per-shard top-k
// lists under the canonical (distance, ID) order reproduces exactly what a
// single process would have returned.
package shard

// Assign maps an image ID to its owning shard under a consistent-hash
// partitioning: Lamping & Veach's jump consistent hash over a splitmix64-mixed
// key. The assignment is a pure function of (id, shards) — rebuilding archives
// with the same shard count reassigns nothing — and is balanced to within a
// few percent for corpus sizes in the thousands. shards must be >= 1.
func Assign(id int, shards int) int {
	if shards <= 1 {
		return 0
	}
	key := mix64(uint64(id))
	// Jump consistent hash: each iteration decides whether the key jumps to a
	// later bucket as the bucket count grows from 1 to shards.
	var b, j int64 = -1, 0
	for j < int64(shards) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// mix64 is the splitmix64 finalizer: sequential image IDs become
// well-distributed 64-bit keys, which jump hash requires for balance.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
