package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"qdcbir/internal/core"
	"qdcbir/internal/par"
	"qdcbir/internal/vec"
)

// Searcher answers subtree-restricted k-NN searches. A local Replica is one
// Searcher; a router's scatter-gather client (fan out to every shard, merge
// with MergeNeighbors) is another. The contract both satisfy: the returned
// list is the k nearest images under the node across the WHOLE corpus the
// searcher represents, ascending by (distance, ID), with distances identical
// to the single-node engine's.
type Searcher interface {
	SearchNode(ctx context.Context, nodeID uint64, q vec.Vector, weights []float64, k int) ([]Neighbor, error)
}

// RelPoint is one relevant image prepared for distributed finalize: its ID,
// its assigned subcluster (a leaf for stateless /v1/query-style calls; any
// node for a resumed feedback session), and its feature vector. Callers must
// pass points deduplicated and in marking order, and omit unassigned images —
// the same preconditions core.finalizeGroups sees.
type RelPoint struct {
	ID     int
	NodeID uint64
	Vec    vec.Vector
}

// ScoredImage mirrors core.ScoredImage on wire-neutral types.
type ScoredImage struct {
	ID    int
	Score float64
}

// Group mirrors core.Group: one localized subquery's results.
type Group struct {
	NodeID       uint64
	SearchNodeID uint64
	QueryIDs     []int
	Images       []ScoredImage
	RankScore    float64
}

// Expanded reports whether the §3.3 boundary test widened the search area.
func (g *Group) Expanded() bool { return g.SearchNodeID != g.NodeID }

// Result is a distributed finalize outcome: groups ordered by rank score,
// exactly as core.Result orders them.
type Result struct {
	Groups     []Group
	Expansions int
}

// IDs returns the result image IDs in group order, matching core.Result.IDs.
func (r *Result) IDs() []int {
	var out []int
	for _, g := range r.Groups {
		for _, im := range g.Images {
			out = append(out, im.ID)
		}
	}
	return out
}

// FinalizeScatter runs the final localized multipoint k-NN round (§3.3/§3.4)
// against a Searcher, transcribing core.finalizeGroups step for step —
// grouping order, the (count desc, node ID asc) subquery order, floor-based
// proportional allocation with round-robin leftovers, the alloc+k request
// size, the serial first-claim merge, the top-up loop, and the stable
// rank-score sort. Given a Searcher that honours its contract, the output is
// bit-identical to the single-node finalize over the same inputs: every
// arithmetic step either operates on identical float64 values in the same
// order or is integer bookkeeping.
func FinalizeScatter(ctx context.Context, topo *Topology, s Searcher, rel []RelPoint, k int, weights []float64, boundary float64, parallelism int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: invalid k=%d", k)
	}
	// Group the query panel by assigned subcluster, preserving marking order.
	type local struct {
		nodeIdx int
		ids     []int
		qpts    []vec.Vector
	}
	byNode := make(map[uint64]*local)
	var order []uint64
	for _, p := range rel {
		idx, ok := topo.IdxOf(p.NodeID)
		if !ok {
			return nil, fmt.Errorf("shard: relevant image %d assigned to unknown node %d", p.ID, p.NodeID)
		}
		l, ok2 := byNode[p.NodeID]
		if !ok2 {
			l = &local{nodeIdx: idx}
			byNode[p.NodeID] = l
			order = append(order, p.NodeID)
		}
		l.ids = append(l.ids, p.ID)
		l.qpts = append(l.qpts, p.Vec)
	}
	if len(byNode) == 0 {
		return nil, errors.New("shard: no relevant image lies under the current frontier")
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := byNode[order[i]], byNode[order[j]]
		if len(a.ids) != len(b.ids) {
			return len(a.ids) > len(b.ids)
		}
		return order[i] < order[j]
	})
	if len(order) > k {
		order = order[:k]
	}

	// Resolve each subquery's search area (§3.3) and centroid.
	type prepared struct {
		l         *local
		searchIdx int
		centroid  vec.Vector
		cap       int
	}
	res := &Result{}
	preps := make(map[uint64]*prepared, len(order))
	for _, nodeID := range order {
		l := byNode[nodeID]
		searchIdx := topo.ExpandForQuery(l.nodeIdx, l.qpts, boundary)
		if searchIdx != l.nodeIdx {
			res.Expansions++
		}
		preps[nodeID] = &prepared{
			l:         l,
			searchIdx: searchIdx,
			centroid:  vec.Centroid(l.qpts),
			cap:       topo.Nodes[searchIdx].Size,
		}
	}

	// Proportional allocation (§3.4): the shared core arithmetic, so the
	// scatter path allocates bit-identically to the single-node finalize.
	counts := make([]int, len(order))
	caps := make([]int, len(order))
	for i, nodeID := range order {
		counts[i] = len(byNode[nodeID].ids)
		caps[i] = preps[nodeID].cap
	}
	allocs := core.ProportionalAlloc(k, counts, caps)
	alloc := make(map[uint64]int, len(order))
	for i, nodeID := range order {
		alloc[nodeID] = allocs[i]
	}

	// Scatter the subqueries (each asks for alloc+k, a prefix-consistent
	// over-request covering any overlap claimed by earlier groups), then merge
	// serially in group order.
	neighborLists := make([][]Neighbor, len(order))
	err := par.Do(ctx, len(order), parallelism, func(i int) error {
		p := preps[order[i]]
		ns, err := s.SearchNode(ctx, topo.Nodes[p.searchIdx].ID, p.centroid, weights, alloc[order[i]]+k)
		if err != nil {
			return err
		}
		neighborLists[i] = ns
		return nil
	})
	if err != nil {
		return nil, err
	}

	seen := make(map[int]bool, k)
	groups := make(map[uint64]*Group, len(order))
	for i, nodeID := range order {
		p := preps[nodeID]
		g := &Group{NodeID: nodeID, SearchNodeID: topo.Nodes[p.searchIdx].ID, QueryIDs: p.l.ids}
		for _, n := range neighborLists[i] {
			if len(g.Images) >= alloc[nodeID] {
				break
			}
			if seen[n.ID] {
				continue
			}
			seen[n.ID] = true
			g.Images = append(g.Images, ScoredImage{ID: n.ID, Score: n.Dist})
			g.RankScore += n.Dist
		}
		groups[nodeID] = g
	}
	for deficit := k - len(seen); deficit > 0; {
		progressed := false
		for _, nodeID := range order {
			if deficit <= 0 {
				break
			}
			p, g := preps[nodeID], groups[nodeID]
			if len(g.Images) >= p.cap {
				continue
			}
			want := len(g.Images) + deficit + len(seen)
			more, err := s.SearchNode(ctx, topo.Nodes[p.searchIdx].ID, p.centroid, weights, want)
			if err != nil {
				return nil, err
			}
			for _, n := range more {
				if deficit <= 0 {
					break
				}
				if seen[n.ID] {
					continue
				}
				seen[n.ID] = true
				g.Images = append(g.Images, ScoredImage{ID: n.ID, Score: n.Dist})
				g.RankScore += n.Dist
				deficit--
				progressed = true
			}
		}
		if !progressed {
			break // every search area exhausted; fewer than k images exist
		}
	}
	for _, nodeID := range order {
		res.Groups = append(res.Groups, *groups[nodeID])
	}
	sort.SliceStable(res.Groups, func(i, j int) bool { return res.Groups[i].RankScore < res.Groups[j].RankScore })
	return res, nil
}
