package shard

import (
	"fmt"
	"math"

	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// NodeInfo is one node of the single-node RFS hierarchy, reduced to exactly
// what distributed planning needs: identity and shape for subtree-restricted
// search, the §3.3 boundary geometry (Center/Diag feed the same BoundaryRatio
// arithmetic rfs.Structure computes from the live rectangle), the full-corpus
// subtree size that caps proportional allocation, and the node's
// representative images for remote feedback sessions.
type NodeInfo struct {
	ID     uint64    `json:"id"`
	Parent int       `json:"parent"` // index into Topology.Nodes; -1 for the root
	Leaf   bool      `json:"leaf"`
	Size   int       `json:"size"` // images under this node in the FULL corpus
	Center []float64 `json:"center"`
	Diag   float64   `json:"diag"`
	Reps   []int     `json:"reps,omitempty"` // representative image IDs, selection order
}

// Topology is the full single-node hierarchy every shard carries. Shards hold
// disjoint vector subsets but identical topology tables, so a router can plan
// a finalize round (grouping, expansion, allocation) once and every shard
// interprets node IDs identically. Nodes are stored in pre-order: a node's
// descendants form a contiguous run after it, and Parent always points
// backwards.
type Topology struct {
	Nodes []NodeInfo `json:"nodes"`
	// RepLeaf maps each distinct representative image to its leaf node ID.
	// Feedback descent (ChildContaining) walks up from the leaf; sessions only
	// ever mark displayed images, and displays draw from representatives, so
	// this map covers everything a remote session needs.
	RepLeaf map[int]uint64 `json:"rep_leaf,omitempty"`
	// RepLabels carries the representatives' ground-truth labels so a shard
	// can label candidates that live on other shards.
	RepLabels map[int]string `json:"rep_labels,omitempty"`

	idxOf    map[uint64]int
	children [][]int
}

// TopologyOf extracts the topology table from a built structure. label may be
// nil (no representative labels).
func TopologyOf(s *rfs.Structure, label func(id int) string) *Topology {
	t := &Topology{
		RepLeaf: make(map[int]uint64),
	}
	if label != nil {
		t.RepLabels = make(map[int]string)
	}
	var walk func(n *rstar.Node, parent int)
	walk = func(n *rstar.Node, parent int) {
		idx := len(t.Nodes)
		r := n.Rect()
		reps := s.Reps(n, nil)
		info := NodeInfo{
			ID:     uint64(n.ID()),
			Parent: parent,
			Leaf:   n.IsLeaf(),
			Size:   s.SubtreeSize(n),
			Center: append([]float64(nil), r.Center()...),
			Diag:   r.Diagonal(),
		}
		if len(reps) > 0 {
			info.Reps = make([]int, len(reps))
			for i, id := range reps {
				info.Reps[i] = int(id)
			}
		}
		t.Nodes = append(t.Nodes, info)
		for _, c := range n.Children() {
			walk(c, idx)
		}
	}
	walk(s.Root(), -1)
	for _, id := range s.AllReps() {
		t.RepLeaf[int(id)] = uint64(s.LeafOf(id).ID())
		if label != nil {
			t.RepLabels[int(id)] = label(int(id))
		}
	}
	if err := t.Index(); err != nil {
		panic(fmt.Sprintf("shard: topology of valid structure: %v", err)) // unreachable
	}
	return t
}

// Index builds the derived lookup tables (node-ID index, child lists) after a
// decode, validating the pre-order invariants. Call once before using any
// other method on a deserialized Topology.
func (t *Topology) Index() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("shard: empty topology")
	}
	if t.Nodes[0].Parent != -1 {
		return fmt.Errorf("shard: topology node 0 is not a root (parent %d)", t.Nodes[0].Parent)
	}
	t.idxOf = make(map[uint64]int, len(t.Nodes))
	t.children = make([][]int, len(t.Nodes))
	for i, n := range t.Nodes {
		if _, dup := t.idxOf[n.ID]; dup {
			return fmt.Errorf("shard: duplicate topology node ID %d", n.ID)
		}
		t.idxOf[n.ID] = i
		if i > 0 {
			if n.Parent < 0 || n.Parent >= i {
				return fmt.Errorf("shard: topology node %d parent %d breaks pre-order", i, n.Parent)
			}
			if t.Nodes[n.Parent].Leaf {
				return fmt.Errorf("shard: topology node %d has leaf parent %d", i, n.Parent)
			}
			t.children[n.Parent] = append(t.children[n.Parent], i)
		}
	}
	for id, leaf := range t.RepLeaf {
		li, ok := t.idxOf[leaf]
		if !ok || !t.Nodes[li].Leaf {
			return fmt.Errorf("shard: representative %d maps to unknown/non-leaf node %d", id, leaf)
		}
	}
	return nil
}

// Root returns the root node index (always 0 in pre-order).
func (t *Topology) Root() int { return 0 }

// RootID returns the root node's page ID.
func (t *Topology) RootID() uint64 { return t.Nodes[0].ID }

// IdxOf resolves a node page ID to its index.
func (t *Topology) IdxOf(id uint64) (int, bool) {
	i, ok := t.idxOf[id]
	return i, ok
}

// Children returns the child indices of node i (shared; do not modify).
func (t *Topology) Children(i int) []int { return t.children[i] }

// BoundaryRatio mirrors rfs.Structure.BoundaryRatio bit-for-bit: the distance
// from the node centre divided by the node diagonal, with the same
// zero-diagonal conventions.
func (t *Topology) BoundaryRatio(i int, p vec.Vector) float64 {
	n := &t.Nodes[i]
	dist := vec.L2(p, vec.Vector(n.Center))
	if n.Diag == 0 {
		if dist == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return dist / n.Diag
}

// ExpandForQuery mirrors rfs.Structure.ExpandForQuery: while any query point's
// boundary ratio exceeds the threshold, move to the parent.
func (t *Topology) ExpandForQuery(i int, queryPoints []vec.Vector, threshold float64) int {
	cur := i
	for t.Nodes[cur].Parent >= 0 {
		nearBoundary := false
		for _, q := range queryPoints {
			if t.BoundaryRatio(cur, q) > threshold {
				nearBoundary = true
				break
			}
		}
		if !nearBoundary {
			break
		}
		cur = t.Nodes[cur].Parent
	}
	return cur
}

// ChildContaining returns the index of node i's child whose subtree holds the
// representative image, or -1 when i is a leaf or the image's leaf does not
// descend from i — the same contract as rfs.Structure.ChildContaining,
// resolved through the RepLeaf table instead of the live leaf map.
func (t *Topology) ChildContaining(i int, repID int) int {
	if t.Nodes[i].Leaf {
		return -1
	}
	leafID, ok := t.RepLeaf[repID]
	if !ok {
		return -1
	}
	cur, ok := t.idxOf[leafID]
	if !ok {
		return -1
	}
	for cur >= 0 {
		p := t.Nodes[cur].Parent
		if p == i {
			return cur
		}
		cur = p
	}
	return -1
}
