package shard

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Meta identifies a shard archive and the fleet it belongs to. A router
// refuses to assemble a fleet whose members disagree on any of these fields —
// most importantly CorpusSig (the slices must come from one build of one
// corpus) and Precision (float64 and float32 are distinct result modes whose
// distances must never be merged).
type Meta struct {
	ShardIndex     int     `json:"shard_index"`
	ShardCount     int     `json:"shard_count"`
	Images         int     `json:"images"`       // full corpus size
	LocalImages    int     `json:"local_images"` // rows stored on this shard
	Dim            int     `json:"dim"`
	Precision      string  `json:"precision"` // "f64" or "f32"
	Quantized      bool    `json:"quantized"`
	ArchiveVersion int     `json:"archive_version"` // embedded system archive version
	CorpusSig      uint64  `json:"corpus_sig"`      // signature of (corpus, topology, shard count)
	Boundary       float64 `json:"boundary"`        // §3.3 expansion threshold of the build
	DisplayCount   int     `json:"display_count"`
}

// shardMagic opens every shard archive: the qdcbir family byte, 'Q' 'S' for
// "shard", then a format version. Distinct from both the versioned system
// archive prefix (0xD1 'Q' 'D') and bare gob streams, so loaders can sniff
// the kind from the first four bytes.
var shardMagic = [4]byte{0xD1, 'Q', 'S', 1}

// IsArchiveHeader reports whether head (>= 4 bytes) begins a shard archive.
func IsArchiveHeader(head []byte) bool {
	return len(head) >= 4 && head[0] == shardMagic[0] && head[1] == shardMagic[1] &&
		head[2] == shardMagic[2] && head[3] == shardMagic[3]
}

// Archive is one shard's self-contained on-disk form: fleet identity, the
// full single-node topology, the local rows' global IDs and full-tree leaf
// assignments, and an embedded versioned system archive over the local subset
// (so a shard replica is also a complete standalone qdcbir system). Archives
// are produced by the root package's SliceShard and opened by OpenShard.
type Archive struct {
	Meta    Meta
	Topo    *Topology
	Globals []int    // global image IDs stored here, ascending
	LeafID  []uint64 // full-tree leaf node ID per local row
	Sys     []byte   // embedded qdcbir system archive of the local subset
}

// Write persists the archive: the 4-byte shard magic followed by the
// gob-encoded body.
func (a *Archive) Write(w io.Writer) error {
	if _, err := w.Write(shardMagic[:]); err != nil {
		return fmt.Errorf("shard: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(a); err != nil {
		return fmt.Errorf("shard: encode: %w", err)
	}
	return nil
}

// WriteFile persists the archive to a file.
func (a *Archive) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := a.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadArchive decodes a shard archive stream.
func ReadArchive(r io.Reader) (*Archive, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil || !IsArchiveHeader(head) {
		return nil, fmt.Errorf("shard: not a shard archive (header % x)", head)
	}
	if _, err := br.Discard(4); err != nil {
		return nil, fmt.Errorf("shard: read header: %w", err)
	}
	var a Archive
	if err := gob.NewDecoder(br).Decode(&a); err != nil {
		return nil, fmt.Errorf("shard: decode: %w", err)
	}
	return &a, nil
}

// ReadArchiveFile decodes a shard archive from a file.
func ReadArchiveFile(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadArchive(f)
}
