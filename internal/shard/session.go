package shard

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qdcbir/internal/core"
)

// ErrFinalized mirrors core.ErrFinalized for shard-hosted sessions.
var ErrFinalized = errors.New("shard: session already finalized")

// Session is a feedback session hosted on a shard replica. It runs the §3.2
// display/descent protocol over the full single-node topology — candidate
// pools, proportional display allocation, per-mark child descent, frontier
// maintenance — transcribed step for step from core.Session, so a shard
// session with the same seed shows the same candidates and reaches the same
// panel state as the single-node engine would. What a shard session cannot do
// alone is Finalize: the final localized k-NN needs every shard's rows, so
// the session exports its state (core.SessionState, the shared wire format)
// and a router runs FinalizeScatter over the fleet.
type Session struct {
	topo         *Topology
	rng          *rand.Rand
	displayCount int

	frontier  []int // topology node indices, sorted by node ID
	relevant  []int // marking order
	relSet    map[int]bool
	assign    map[int]int // image -> assigned node index
	displayed map[int]int // image -> displaying frontier node index
	everShown map[int]bool
	cursors   map[uint64]*shardCursor
	weights   []float64

	rounds    int
	finalized bool
	// Simulated feedback I/O, mirroring core's session-lifetime page cache:
	// one read per distinct node touched.
	pages map[uint64]bool
	reads uint64
	// Counters carried over from a restored state's earlier life.
	baseFeedbackReads uint64
	baseFinalReads    uint64
	baseExpansions    int
}

// NewSession starts a session over the topology. displayCount <= 0 uses the
// archive's configured value at the server layer; here it must be positive.
func NewSession(topo *Topology, rng *rand.Rand, displayCount int) *Session {
	return &Session{
		topo:         topo,
		rng:          rng,
		displayCount: displayCount,
		frontier:     []int{topo.Root()},
		relSet:       make(map[int]bool),
		everShown:    make(map[int]bool),
		pages:        make(map[uint64]bool),
	}
}

func (s *Session) access(nodeID uint64) {
	if !s.pages[nodeID] {
		s.pages[nodeID] = true
		s.reads++
	}
}

// Relevant returns the images marked relevant so far (shared; do not modify).
func (s *Session) Relevant() []int { return s.relevant }

// Subqueries returns the number of active localized subqueries.
func (s *Session) Subqueries() int { return len(s.frontier) }

// Rounds returns the feedback rounds processed.
func (s *Session) Rounds() int { return s.rounds }

// Finalized reports whether the session's state has been consumed by a
// distributed finalize.
func (s *Session) Finalized() bool { return s.finalized }

// MarkFinalized closes the session after a router-run finalize.
func (s *Session) MarkFinalized() { s.finalized = true }

// Candidates draws up to displayCount representatives across the frontier,
// transcribing core.Session.Candidates: proportional pool shares
// (math.Round, minimum one, remainder to the last pool) and a shuffled
// without-replacement cursor per node. Equal seeds yield the display
// sequence the single-node session shows.
func (s *Session) Candidates() []int {
	limit := s.displayCount
	type pool struct {
		node int
		reps []int
	}
	var pools []pool
	total := 0
	for _, n := range s.frontier {
		s.access(s.topo.Nodes[n].ID)
		reps := s.topo.Nodes[n].Reps
		if len(reps) == 0 {
			continue
		}
		pools = append(pools, pool{node: n, reps: reps})
		total += len(reps)
	}
	if total == 0 {
		return nil
	}
	if s.displayed == nil {
		s.displayed = make(map[int]int)
	}
	type out struct {
		id   int
		node int
	}
	var outs []out
	if total <= limit {
		for _, p := range pools {
			for _, id := range p.reps {
				outs = append(outs, out{id: id, node: p.node})
			}
		}
	} else {
		remaining := limit
		for i, p := range pools {
			share := int(math.Round(float64(limit) * float64(len(p.reps)) / float64(total)))
			if share < 1 {
				share = 1
			}
			if i == len(pools)-1 {
				share = remaining
			}
			if share > len(p.reps) {
				share = len(p.reps)
			}
			if share > remaining {
				share = remaining
			}
			for _, id := range s.take(s.topo.Nodes[p.node].ID, p.reps, share) {
				outs = append(outs, out{id: id, node: p.node})
			}
			remaining -= share
			if remaining <= 0 {
				break
			}
		}
	}
	ids := make([]int, len(outs))
	for i, o := range outs {
		s.displayed[o.id] = o.node
		s.everShown[o.id] = true
		ids[i] = o.id
	}
	return ids
}

type shardCursor struct {
	order []int
	pos   int
}

func (s *Session) take(nodeID uint64, reps []int, n int) []int {
	if s.cursors == nil {
		s.cursors = make(map[uint64]*shardCursor)
	}
	cur, ok := s.cursors[nodeID]
	if !ok || len(cur.order) != len(reps) {
		cur = &shardCursor{order: append([]int(nil), reps...)}
		s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
		s.cursors[nodeID] = cur
	}
	out := make([]int, 0, n)
	for len(out) < n {
		if cur.pos >= len(cur.order) {
			s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
			cur.pos = 0
		}
		out = append(out, cur.order[cur.pos])
		cur.pos++
		if len(out) >= len(cur.order) {
			break // pool smaller than the request: one full pass is enough
		}
	}
	return out
}

// Feedback processes one round of relevance feedback, transcribing
// core.Session.Feedback: new marks join the panel at the displaying node's
// child containing them (with the deeper-assignment regression guard), then
// the whole panel descends one level toward each image's leaf.
func (s *Session) Feedback(marked []int) error {
	if s.finalized {
		return ErrFinalized
	}
	s.rounds++
	if s.assign == nil {
		s.assign = make(map[int]int)
	}
	for _, id := range marked {
		node, ok := s.displayed[id]
		if !ok {
			return fmt.Errorf("shard: image %d was not displayed", id)
		}
		if !s.relSet[id] {
			s.relSet[id] = true
			s.relevant = append(s.relevant, id)
		}
		s.access(s.topo.Nodes[node].ID)
		child := s.topo.ChildContaining(node, id)
		if child < 0 {
			child = node // displaying node is a leaf: maximally localized
		}
		if cur, ok := s.assign[id]; !ok || s.topo.Nodes[child].Size < s.topo.Nodes[cur].Size {
			s.assign[id] = child
		}
	}
	for _, id := range s.relevant {
		n, ok := s.assign[id]
		if !ok || s.topo.Nodes[n].Leaf {
			continue
		}
		s.access(s.topo.Nodes[n].ID)
		if child := s.topo.ChildContaining(n, id); child >= 0 {
			s.assign[id] = child
		}
	}
	s.rebuildFrontier()
	return nil
}

// Retract removes previously marked images, transcribing core.Session.Retract.
func (s *Session) Retract(ids []int) {
	if s.finalized {
		return
	}
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		if s.relSet[id] {
			drop[id] = true
			delete(s.relSet, id)
			delete(s.assign, id)
		}
	}
	if len(drop) == 0 {
		return
	}
	kept := s.relevant[:0]
	for _, id := range s.relevant {
		if !drop[id] {
			kept = append(kept, id)
		}
	}
	s.relevant = kept
	s.rebuildFrontier()
}

func (s *Session) rebuildFrontier() {
	if len(s.assign) == 0 {
		s.frontier = []int{s.topo.Root()}
		return
	}
	next := make(map[int]bool, len(s.assign))
	for _, n := range s.assign {
		next[n] = true
	}
	s.frontier = s.frontier[:0]
	for n := range next {
		s.frontier = append(s.frontier, n)
	}
	sort.Slice(s.frontier, func(i, j int) bool { return s.topo.Nodes[s.frontier[i]].ID < s.topo.Nodes[s.frontier[j]].ID })
}

// ExportState snapshots the session in the shared wire format. The state is
// interchangeable with a single-node core.Session export: restoring it into
// either implementation reproduces the same panel, and a distributed finalize
// over it matches the single-node finalize bit for bit.
func (s *Session) ExportState() *core.SessionState {
	st := &core.SessionState{
		Version:       core.SessionStateVersion,
		Relevant:      append([]int(nil), s.relevant...),
		Rounds:        s.rounds,
		Expansions:    s.baseExpansions,
		FeedbackReads: s.baseFeedbackReads + s.reads,
		FinalReads:    s.baseFinalReads,
		Finalized:     s.finalized,
	}
	if len(s.assign) > 0 {
		st.Assign = make(map[int]uint64, len(s.assign))
		for id, n := range s.assign {
			st.Assign[id] = s.topo.Nodes[n].ID
		}
	}
	if len(s.displayed) > 0 {
		st.Displayed = make(map[int]uint64, len(s.displayed))
		for id, n := range s.displayed {
			st.Displayed[id] = s.topo.Nodes[n].ID
		}
	}
	if len(s.everShown) > 0 {
		st.EverShown = make([]int, 0, len(s.everShown))
		for id := range s.everShown {
			st.EverShown = append(st.EverShown, id)
		}
		sort.Ints(st.EverShown)
	}
	if s.weights != nil {
		st.Weights = append([]float64(nil), s.weights...)
	}
	return st
}

// RestoreSession reconstructs a shard-hosted session from an exported state.
// Node IDs resolve against the topology, so the state must come from the
// same fleet (or the single-node build the fleet was sliced from).
func RestoreSession(topo *Topology, st *core.SessionState, rng *rand.Rand, displayCount int) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("shard: nil session state")
	}
	if st.Version != core.SessionStateVersion {
		return nil, fmt.Errorf("shard: session state version %d unsupported (want %d)", st.Version, core.SessionStateVersion)
	}
	s := NewSession(topo, rng, displayCount)
	s.rounds = st.Rounds
	s.finalized = st.Finalized
	s.baseFeedbackReads = st.FeedbackReads
	s.baseFinalReads = st.FinalReads
	s.baseExpansions = st.Expansions
	for _, id := range st.Relevant {
		if s.relSet[id] {
			return nil, fmt.Errorf("shard: session state repeats relevant image %d", id)
		}
		s.relSet[id] = true
		s.relevant = append(s.relevant, id)
	}
	if len(st.Assign) > 0 {
		s.assign = make(map[int]int, len(st.Assign))
		for id, nodeID := range st.Assign {
			if !s.relSet[id] {
				return nil, fmt.Errorf("shard: session state assigns unmarked image %d", id)
			}
			idx, ok := topo.IdxOf(nodeID)
			if !ok {
				return nil, fmt.Errorf("shard: session state image %d assigned to unknown node %d", id, nodeID)
			}
			s.assign[id] = idx
		}
	}
	if len(st.Displayed) > 0 {
		s.displayed = make(map[int]int, len(st.Displayed))
		for id, nodeID := range st.Displayed {
			idx, ok := topo.IdxOf(nodeID)
			if !ok {
				return nil, fmt.Errorf("shard: session state displays image %d from unknown node %d", id, nodeID)
			}
			s.displayed[id] = idx
		}
	}
	for _, id := range st.EverShown {
		s.everShown[id] = true
	}
	if st.Weights != nil {
		s.weights = append([]float64(nil), st.Weights...)
	}
	s.rebuildFrontier()
	return s, nil
}
