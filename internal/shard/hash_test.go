package shard

import "testing"

// The partitioner is the contract between build time and serve time: qdbuild
// slices by Assign, the router routes point lookups by Assign, and the two
// must agree forever. These tests pin the properties the serving tier leans
// on: determinism, full-range coverage, balance, and jump-hash monotonicity
// (growing the fleet only moves keys to the NEW shard, never between old
// ones).

func TestAssignDeterministicAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8, 16} {
		for id := 0; id < 10000; id++ {
			s := Assign(id, shards)
			if s < 0 || s >= shards {
				t.Fatalf("Assign(%d, %d) = %d out of range", id, shards, s)
			}
			if again := Assign(id, shards); again != s {
				t.Fatalf("Assign(%d, %d) unstable: %d then %d", id, shards, s, again)
			}
		}
	}
}

func TestAssignSingleShard(t *testing.T) {
	for id := 0; id < 1000; id++ {
		if s := Assign(id, 1); s != 0 {
			t.Fatalf("Assign(%d, 1) = %d, want 0", id, s)
		}
	}
}

// Balance: over 50k sequential IDs every shard holds within 10% of the ideal
// share — the acceptance bound from the issue. splitmix64 + jump hash land
// well inside it; the loose bound keeps the test robust, not the hash.
func TestAssignBalance(t *testing.T) {
	const n = 50000
	for _, shards := range []int{2, 3, 4, 8, 16} {
		counts := make([]int, shards)
		for id := 0; id < n; id++ {
			counts[Assign(id, shards)]++
		}
		ideal := float64(n) / float64(shards)
		for s, c := range counts {
			dev := (float64(c) - ideal) / ideal
			if dev < -0.10 || dev > 0.10 {
				t.Errorf("shards=%d: shard %d holds %d of %d (%.1f%% off ideal %.0f)",
					shards, s, c, n, 100*dev, ideal)
			}
		}
	}
}

// Jump consistent hash's defining property: when the fleet grows from n to
// n+1 shards, a key either stays put or moves to the new shard n — no
// shuffling among existing shards. This is what makes incremental fleet
// growth cheap (only 1/(n+1) of the corpus re-slices).
func TestAssignMonotoneGrowth(t *testing.T) {
	for id := 0; id < 20000; id++ {
		prev := Assign(id, 2)
		for n := 2; n < 16; n++ {
			next := Assign(id, n+1)
			if next != prev && next != n {
				t.Fatalf("Assign(%d, %d)=%d but Assign(%d, %d)=%d: moved between existing shards",
					id, n, prev, id, n+1, next)
			}
			prev = next
		}
	}
}

// Slice/route agreement does not depend on corpus size: partitioning a prefix
// of the ID space assigns each ID exactly as partitioning any longer range
// does, because Assign reads nothing but (id, shards). Pinned explicitly since
// the per-shard build farm mode (qdbuild -shards N -shard i) rebuilds slices
// independently and must land identical partitions.
func TestAssignIndependentOfCorpus(t *testing.T) {
	want := make(map[int]int)
	for id := 0; id < 1000; id++ {
		want[id] = Assign(id, 4)
	}
	// "Rebuild" with a different traversal order and extent.
	for id := 4999; id >= 0; id-- {
		got := Assign(id, 4)
		if w, ok := want[id]; ok && got != w {
			t.Fatalf("Assign(%d, 4) changed across rebuilds: %d vs %d", id, w, got)
		}
	}
}
