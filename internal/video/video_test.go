package video

import (
	"math/rand"
	"testing"

	"qdcbir/internal/dataset"
	"qdcbir/internal/img"
	"qdcbir/internal/rstar"
)

// appearanceFrames renders n frames of one appearance: consecutive frames of
// one "camera take" (same appearance, per-frame jitter).
func appearanceFrames(a dataset.Appearance, n int, rng *rand.Rand) []*img.Image {
	frames := make([]*img.Image, n)
	for i := range frames {
		frames[i] = dataset.Render(a, rng)
	}
	return frames
}

// syntheticClip concatenates one take per appearance.
func syntheticClip(id int, apps []dataset.Appearance, framesPerShot int, rng *rand.Rand) Clip {
	var frames []*img.Image
	for _, a := range apps {
		frames = append(frames, appearanceFrames(a, framesPerShot, rng)...)
	}
	return Clip{ID: id, Frames: frames}
}

// distinctAppearances samples n well-separated appearances.
func distinctAppearances(n int, seed int64) []dataset.Appearance {
	spec := dataset.SmallSpec(seed, 9+n, (9+n)*4)
	var out []dataset.Appearance
	for _, cat := range spec.Categories {
		for _, sub := range cat.Subconcepts {
			out = append(out, sub.Appearance)
			if len(out) == n {
				return out
			}
		}
	}
	return out
}

func TestSegmentSingleShot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	apps := distinctAppearances(1, 2)
	clip := syntheticClip(0, apps, 12, rng)
	shots, feats, err := Segmenter{}.Segment(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 12 {
		t.Fatalf("feats = %d", len(feats))
	}
	if len(shots) != 1 {
		t.Fatalf("one-take clip segmented into %d shots", len(shots))
	}
	sh := shots[0]
	if sh.Start != 0 || sh.End != 12 {
		t.Errorf("shot span [%d,%d)", sh.Start, sh.End)
	}
	if sh.Keyframe < sh.Start || sh.Keyframe >= sh.End {
		t.Errorf("keyframe %d outside shot", sh.Keyframe)
	}
}

func TestSegmentFindsCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	apps := distinctAppearances(3, 4)
	const per = 10
	clip := syntheticClip(0, apps, per, rng)
	shots, _, err := Segmenter{}.Segment(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(shots) != 3 {
		t.Fatalf("3-take clip segmented into %d shots: %+v", len(shots), shots)
	}
	for i, sh := range shots {
		if sh.Index != i {
			t.Errorf("shot %d has index %d", i, sh.Index)
		}
		if sh.Start != i*per || sh.End != (i+1)*per {
			t.Errorf("shot %d span [%d,%d), want [%d,%d)", i, sh.Start, sh.End, i*per, (i+1)*per)
		}
		if sh.Keyframe < sh.Start || sh.Keyframe >= sh.End {
			t.Errorf("shot %d keyframe %d out of range", i, sh.Keyframe)
		}
	}
	// Shots tile the clip exactly.
	if shots[0].Start != 0 || shots[len(shots)-1].End != len(clip.Frames) {
		t.Error("shots do not tile the clip")
	}
}

func TestSegmentEdgeCases(t *testing.T) {
	if _, _, err := (Segmenter{}).Segment(Clip{ID: 1}); err == nil {
		t.Error("empty clip accepted")
	}
	// Single frame.
	rng := rand.New(rand.NewSource(5))
	app := distinctAppearances(1, 6)[0]
	clip := Clip{ID: 2, Frames: appearanceFrames(app, 1, rng)}
	shots, _, err := Segmenter{}.Segment(clip)
	if err != nil || len(shots) != 1 {
		t.Fatalf("single-frame clip: %v, %d shots", err, len(shots))
	}
	// A clip shorter than MinShot still yields one shot.
	clip2 := Clip{ID: 3, Frames: appearanceFrames(app, 2, rng)}
	shots2, _, err := Segmenter{MinShot: 5}.Segment(clip2)
	if err != nil || len(shots2) != 1 {
		t.Fatalf("short clip: %v, %d shots", err, len(shots2))
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v want %v", c.in, got, c.want)
		}
	}
	// Input is not mutated.
	in := []float64{3, 1, 2}
	median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("median mutated input")
	}
}

func TestSegmentFrozenClip(t *testing.T) {
	// Identical frames everywhere: zero median distance, no cuts.
	im := img.New(16, 16)
	im.Fill(img.RGB{R: 50, G: 50, B: 50})
	frames := make([]*img.Image, 8)
	for i := range frames {
		frames[i] = im.Clone()
	}
	shots, _, err := Segmenter{}.Segment(Clip{ID: 9, Frames: frames})
	if err != nil {
		t.Fatal(err)
	}
	if len(shots) != 1 {
		t.Fatalf("frozen clip split into %d shots", len(shots))
	}
}

func buildTestLibrary(t *testing.T) (*Library, []dataset.Appearance) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	apps := distinctAppearances(6, 8)
	var clips []Clip
	id := 0
	// 12 clips, each combining two of the six appearances.
	for i := 0; i < 12; i++ {
		a := apps[i%len(apps)]
		b := apps[(i+1)%len(apps)]
		clips = append(clips, syntheticClip(id, []dataset.Appearance{a, b}, 8, rng))
		id++
	}
	lib, err := BuildLibrary(clips, LibraryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return lib, apps
}

func TestBuildLibrary(t *testing.T) {
	lib, _ := buildTestLibrary(t)
	if lib.Shots() < 20 {
		t.Fatalf("library has %d shots, expected ~24", lib.Shots())
	}
	// Every shot resolves.
	for i := 0; i < lib.Shots(); i++ {
		sh, err := lib.Shot(rstar.ItemID(i))
		if err != nil {
			t.Fatal(err)
		}
		if sh.Len() <= 0 {
			t.Errorf("shot %d empty", i)
		}
	}
	if _, err := lib.Shot(rstar.ItemID(lib.Shots())); err == nil {
		t.Error("out-of-range shot accepted")
	}
	if _, err := BuildLibrary(nil, LibraryConfig{}); err == nil {
		t.Error("empty library accepted")
	}
}

func TestSearchByShots(t *testing.T) {
	lib, _ := buildTestLibrary(t)
	// Query with shot 0 as the example; results should include shots from
	// OTHER clips (the appearance repeats across clips by construction).
	got, err := lib.SearchByShots([]rstar.ItemID{0}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("returned %d shots", len(got))
	}
	example, _ := lib.Shot(0)
	crossClip := false
	for _, sh := range got {
		if sh.Clip != example.Clip {
			crossClip = true
		}
	}
	if !crossClip {
		t.Error("search never left the example's own clip")
	}
	// Errors propagate.
	if _, err := lib.SearchByShots(nil, 5); err == nil {
		t.Error("empty example accepted")
	}
}

func TestVideoFeedbackSession(t *testing.T) {
	lib, _ := buildTestLibrary(t)
	sess := lib.NewSession(9)
	cands := sess.Candidates()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if err := sess.Feedback([]rstar.ItemID{cands[0].ID}); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Finalize(4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.Groups {
		for _, im := range g.Images {
			if _, err := lib.Shot(im.ID); err != nil {
				t.Errorf("result %d is not a shot: %v", im.ID, err)
			}
			total++
		}
	}
	if total != 4 {
		t.Errorf("returned %d of 4", total)
	}
}
