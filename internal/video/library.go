package video

import (
	"fmt"
	"math/rand"

	"qdcbir/internal/core"
	"qdcbir/internal/feature"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// LibraryConfig controls shot-library construction.
type LibraryConfig struct {
	// Segmenter parameters (zero values take defaults).
	Segmenter Segmenter
	// RFS carries the structure build parameters; sensible small-corpus
	// defaults are applied when zero.
	RFS rfs.BuildConfig
	// Engine carries the QD engine parameters.
	Engine core.Config
}

// Library is a searchable shot collection: every shot's keyframe is one item
// in an RFS structure, so query decomposition retrieves shots from multiple
// visual neighborhoods exactly as it retrieves still images.
type Library struct {
	shots  []Shot // indexed by rstar.ItemID
	rfs    *rfs.Structure
	engine *core.Engine
}

// BuildLibrary segments every clip and indexes the shot keyframes.
func BuildLibrary(clips []Clip, cfg LibraryConfig) (*Library, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("video: no clips")
	}
	var shots []Shot
	var keyVecs []vec.Vector
	var raws []vec.Vector
	for _, clip := range clips {
		cs, feats, err := cfg.Segmenter.Segment(clip)
		if err != nil {
			return nil, err
		}
		for _, sh := range cs {
			shots = append(shots, sh)
			keyVecs = append(keyVecs, feats[sh.Keyframe])
		}
		raws = append(raws, feats...)
	}
	// Normalize keyframe features against the full frame population so the
	// distance geometry matches the still-image pipeline.
	ex := feature.NewExtractor(raws)
	for i := range keyVecs {
		keyVecs[i] = ex.Normalize(keyVecs[i])
	}
	rcfg := cfg.RFS
	if rcfg.Tree.MaxFill == 0 {
		rcfg.Tree.MaxFill = 24
	}
	if rcfg.TargetFill == 0 {
		rcfg.TargetFill = 20
	}
	if rcfg.RepFraction == 0 {
		rcfg.RepFraction = 0.2
	}
	structure := rfs.Build(keyVecs, rcfg)
	if err := structure.Validate(); err != nil {
		return nil, err
	}
	return &Library{
		shots:  shots,
		rfs:    structure,
		engine: core.NewEngine(structure, cfg.Engine),
	}, nil
}

// Shots returns the number of indexed shots.
func (l *Library) Shots() int { return len(l.shots) }

// Shot returns the shot behind an item ID.
func (l *Library) Shot(id rstar.ItemID) (Shot, error) {
	if int(id) < 0 || int(id) >= len(l.shots) {
		return Shot{}, fmt.Errorf("video: unknown shot %d", id)
	}
	return l.shots[id], nil
}

// Engine exposes the QD engine over the shot keyframes for full feedback
// sessions.
func (l *Library) Engine() *core.Engine { return l.engine }

// NewSession starts a shot-retrieval feedback session.
func (l *Library) NewSession(seed int64) *core.Session {
	return l.engine.NewSession(rand.New(rand.NewSource(seed)))
}

// SearchByShots runs the stateless query path from example shots: the
// analogue of query-by-example over video.
func (l *Library) SearchByShots(examples []rstar.ItemID, k int) ([]Shot, error) {
	res, _, err := l.engine.QueryByExamples(examples, k, nil, nil)
	if err != nil {
		return nil, err
	}
	var out []Shot
	for _, g := range res.Groups {
		for _, im := range g.Images {
			sh, err := l.Shot(im.ID)
			if err != nil {
				return nil, err
			}
			out = append(out, sh)
		}
	}
	return out, nil
}
