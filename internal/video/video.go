// Package video implements the paper's video-retrieval extension (§6: "Our
// system may also be extended to support video retrieval"). Clips are
// segmented into shots by detecting feature-space discontinuities between
// consecutive frames; each shot is represented by the keyframe nearest its
// feature centroid; the keyframes are indexed in an RFS structure, so the
// whole query-decomposition relevance-feedback machinery operates on shots
// exactly as it does on still images.
package video

import (
	"fmt"
	"sort"

	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/vec"
)

// Clip is one video: an ordered frame sequence.
type Clip struct {
	ID     int
	Frames []*img.Image
}

// Shot is one camera take within a clip: the frame interval [Start, End) and
// the keyframe chosen to represent it.
type Shot struct {
	Clip     int // clip ID
	Index    int // shot ordinal within the clip
	Start    int // first frame (inclusive)
	End      int // last frame (exclusive)
	Keyframe int // frame index of the representative frame
}

// Len returns the shot length in frames.
func (s Shot) Len() int { return s.End - s.Start }

// Segmenter detects shot boundaries from frame-feature discontinuities.
type Segmenter struct {
	// Sigma is the adaptive cut threshold: a boundary is declared where the
	// consecutive-frame feature distance exceeds Sigma times the clip's
	// median consecutive distance. The ratio-to-median rule is scale-free and
	// robust in short clips, where mean/stddev thresholds fail (a single
	// large cut inflates the deviation so much that no sample can exceed
	// mean+3σ: the maximum z-score of n samples is (n-1)/√n). Default 3.
	Sigma float64
	// MinShot is the minimum shot length in frames; shorter candidate shots
	// are merged into their predecessor. Default 3.
	MinShot int
}

func (s Segmenter) withDefaults() Segmenter {
	if s.Sigma <= 0 {
		s.Sigma = 3
	}
	if s.MinShot <= 0 {
		s.MinShot = 3
	}
	return s
}

// Segment splits a clip into shots and returns them along with the raw
// per-frame feature vectors (reused by keyframe selection and indexing).
func (sg Segmenter) Segment(clip Clip) ([]Shot, []vec.Vector, error) {
	sg = sg.withDefaults()
	n := len(clip.Frames)
	if n == 0 {
		return nil, nil, fmt.Errorf("video: clip %d has no frames", clip.ID)
	}
	feats := make([]vec.Vector, n)
	for i, f := range clip.Frames {
		feats[i] = feature.Extract(f)
	}
	if n == 1 {
		return []Shot{{Clip: clip.ID, Start: 0, End: 1, Keyframe: 0}}, feats, nil
	}

	// Consecutive-frame distances; cut where a distance exceeds Sigma times
	// the median. A zero median (frozen frames) makes any positive
	// discontinuity a cut.
	dists := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		dists[i] = vec.L2(feats[i], feats[i+1])
	}
	threshold := sg.Sigma * median(dists)

	// Cut where the discontinuity exceeds the threshold.
	var bounds []int // start indices of shots after the first
	for i, d := range dists {
		if d > threshold {
			bounds = append(bounds, i+1)
		}
	}

	// Assemble shots, merging any that fall below the minimum length.
	var shots []Shot
	start := 0
	for _, b := range append(bounds, n) {
		if b-start < sg.MinShot && len(shots) > 0 {
			shots[len(shots)-1].End = b
			start = b
			continue
		}
		shots = append(shots, Shot{Clip: clip.ID, Index: len(shots), Start: start, End: b})
		start = b
	}
	// A too-short FIRST shot could not merge backwards; merge it forward.
	if len(shots) > 1 && shots[0].Len() < sg.MinShot {
		shots[1].Start = shots[0].Start
		shots = shots[1:]
		for i := range shots {
			shots[i].Index = i
		}
	}

	// Keyframe: the frame nearest the shot's feature centroid.
	for i := range shots {
		sh := &shots[i]
		window := feats[sh.Start:sh.End]
		centroid := vec.Centroid(window)
		best, _ := vec.NearestIndex(centroid, window, vec.SqL2)
		sh.Keyframe = sh.Start + best
	}
	return shots, feats, nil
}

// median returns the middle value of xs (mean of the two middles for even
// lengths) without mutating the input.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
