package kmtree

import (
	"math/rand"
	"sort"
	"testing"

	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

func randomPoints(rng *rand.Rand, n, dim int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 5
		}
		pts[i] = p
	}
	return pts
}

func blobs(rng *rand.Rand, nBlobs, per, dim int) []vec.Vector {
	var pts []vec.Vector
	for b := 0; b < nBlobs; b++ {
		center := make(vec.Vector, dim)
		for j := range center {
			center[j] = float64(b * 40)
		}
		for i := 0; i < per; i++ {
			p := center.Clone()
			for j := range p {
				p[j] += rng.NormFloat64()
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestTargetDepth(t *testing.T) {
	cases := []struct {
		n, leaf, fanout, want int
	}{
		{10, 16, 4, 0},
		{16, 16, 4, 0},
		{17, 16, 4, 1},
		{64, 16, 4, 1},
		{65, 16, 4, 2},
		{256, 16, 4, 2},
		{1, 100, 100, 0},
	}
	for _, c := range cases {
		if got := targetDepth(c.n, c.leaf, c.fanout); got != c.want {
			t.Errorf("targetDepth(%d,%d,%d) = %d want %d", c.n, c.leaf, c.fanout, got, c.want)
		}
	}
}

func TestBuildProducesValidTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 10, 50, 300, 1500} {
		pts := randomPoints(rng, n, 5)
		snap := Build(pts, Config{LeafCap: 16, Fanout: 8, Seed: 2})
		tree, err := rstar.FromSnapshot(snap)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: tree has %d items", n, tree.Len())
		}
		// All IDs present exactly once.
		seen := map[rstar.ItemID]bool{}
		for _, it := range tree.ItemsOf() {
			if seen[it.ID] {
				t.Fatalf("n=%d: duplicate %d", n, it.ID)
			}
			seen[it.ID] = true
		}
		// k-NN works and finds each point at distance 0.
		for probe := 0; probe < n; probe += 97 {
			got := tree.KNN(pts[probe], 1, nil)
			if len(got) != 1 || got[0].Dist != 0 {
				t.Fatalf("n=%d: self-query for %d failed: %+v", n, probe, got)
			}
		}
	}
}

func TestBuildEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil, Config{})
}

func TestLeafCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 500, 4)
	snap := Build(pts, Config{LeafCap: 12, Fanout: 6, Seed: 4})
	var walk func(n *rstar.NodeSnapshot, depth int, depths map[int]bool)
	depths := map[int]bool{}
	walk = func(n *rstar.NodeSnapshot, depth int, depths map[int]bool) {
		if n.Leaf {
			if len(n.Items) > 12 {
				t.Errorf("leaf with %d items", len(n.Items))
			}
			depths[depth] = true
			return
		}
		if len(n.Children) > 12 { // MaxFill = max(LeafCap, Fanout)
			t.Errorf("node with %d children", len(n.Children))
		}
		for _, c := range n.Children {
			walk(c, depth+1, depths)
		}
	}
	walk(snap.Root, 0, depths)
	if len(depths) != 1 {
		t.Errorf("leaves at %d distinct depths", len(depths))
	}
}

// Semantic grouping: well-separated blobs should land in distinct subtrees,
// i.e. some leaf exists containing only one blob's points.
func TestClusterCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := blobs(rng, 6, 30, 4)
	snap := Build(pts, Config{LeafCap: 32, Fanout: 8, Seed: 6})
	pure, total := 0, 0
	var walk func(n *rstar.NodeSnapshot)
	walk = func(n *rstar.NodeSnapshot) {
		if n.Leaf {
			total++
			blobsIn := map[int]bool{}
			for _, it := range n.Items {
				blobsIn[int(it.ID)/30] = true
			}
			if len(blobsIn) == 1 {
				pure++
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(snap.Root)
	if total == 0 {
		t.Fatal("no leaves")
	}
	if frac := float64(pure) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of %d leaves are blob-pure", frac*100, total)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 200, 3)
	a := Build(pts, Config{LeafCap: 16, Fanout: 4, Seed: 8})
	b := Build(pts, Config{LeafCap: 16, Fanout: 4, Seed: 8})
	var collect func(n *rstar.NodeSnapshot, out *[]int)
	collect = func(n *rstar.NodeSnapshot, out *[]int) {
		if n.Leaf {
			ids := make([]int, len(n.Items))
			for i, it := range n.Items {
				ids[i] = int(it.ID)
			}
			sort.Ints(ids)
			*out = append(*out, ids...)
			*out = append(*out, -1) // leaf separator
			return
		}
		for _, c := range n.Children {
			collect(c, out)
		}
	}
	var x, y []int
	collect(a.Root, &x)
	collect(b.Root, &y)
	if len(x) != len(y) {
		t.Fatal("structures differ in size")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
