// Package kmtree builds a balanced hierarchical-k-means tree over points and
// emits it as an rstar.TreeSnapshot, giving the RFS structure an alternative
// clustering backbone: the paper picks the R*-tree "without loss of
// generality ... because it is well known" but notes that other hierarchical
// clustering techniques work equally well (§3.1). A k-means hierarchy groups
// by cluster structure rather than by minimum-bounding-rectangle geometry,
// which can align better with the visual subconcept clusters the
// decomposition wants to isolate.
//
// The construction is depth-balanced so the resulting snapshot satisfies the
// R*-tree height invariant: the target depth is fixed up front from the point
// count, every branch recurses exactly that far, and k-means cluster sizes
// are rebalanced against each subtree's capacity.
package kmtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qdcbir/internal/kmeans"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// Config controls tree construction.
type Config struct {
	// LeafCap bounds items per leaf (default 100, the paper's node size).
	LeafCap int
	// Fanout bounds children per internal node (default = LeafCap).
	Fanout int
	// Seed drives the k-means splits.
	Seed int64
	// KMeansIter bounds Lloyd iterations per split. Default 25.
	KMeansIter int
}

func (c Config) withDefaults() Config {
	if c.LeafCap <= 0 {
		c.LeafCap = 100
	}
	if c.Fanout <= 0 {
		c.Fanout = c.LeafCap
	}
	if c.KMeansIter <= 0 {
		c.KMeansIter = 25
	}
	return c
}

// Build clusters the points hierarchically and returns the snapshot, ready
// for rstar.FromSnapshot. Item IDs are the point indices. It panics on an
// empty input.
func Build(points []vec.Vector, cfg Config) *rstar.TreeSnapshot {
	if len(points) == 0 {
		panic("kmtree: empty point set")
	}
	cfg = cfg.withDefaults()
	dim := len(points[0])
	rng := rand.New(rand.NewSource(cfg.Seed))

	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	depth := targetDepth(len(points), cfg.LeafCap, cfg.Fanout)
	root := buildNode(points, ids, depth, cfg, rng)
	return &rstar.TreeSnapshot{
		Dim: dim,
		Cfg: rstar.Config{MaxFill: max(cfg.LeafCap, cfg.Fanout)},
		// k-means clusters are naturally uneven; tolerate light nodes the
		// same way STR bulk loads do.
		FromBulk: true,
		Root:     root,
	}
}

// targetDepth returns the number of levels below the root needed so that
// fanout^depth * leafCap >= n.
func targetDepth(n, leafCap, fanout int) int {
	depth := 0
	capacity := leafCap
	for capacity < n {
		capacity *= fanout
		depth++
		if depth > 64 {
			panic("kmtree: depth overflow")
		}
	}
	return depth
}

// buildNode recursively partitions ids to exactly `depth` further levels.
func buildNode(points []vec.Vector, ids []int, depth int, cfg Config, rng *rand.Rand) *rstar.NodeSnapshot {
	if depth == 0 {
		leaf := &rstar.NodeSnapshot{Leaf: true}
		for _, id := range ids {
			leaf.Items = append(leaf.Items, rstar.Item{ID: rstar.ItemID(id), Point: points[id]})
		}
		return leaf
	}
	// Capacity of each child subtree at the remaining depth.
	childCap := cfg.LeafCap
	for d := 1; d < depth; d++ {
		childCap *= cfg.Fanout
	}
	k := int(math.Ceil(float64(len(ids)) / float64(childCap)))
	if k < 1 {
		k = 1
	}
	if k > cfg.Fanout {
		k = cfg.Fanout
	}
	groups := splitBalanced(points, ids, k, childCap, cfg, rng)
	node := &rstar.NodeSnapshot{}
	for _, g := range groups {
		node.Children = append(node.Children, buildNode(points, g, depth-1, cfg, rng))
	}
	return node
}

// splitBalanced k-means-partitions ids into k non-empty groups of at most
// maxSize each, reassigning overflow points to the nearest centroid with
// spare capacity.
func splitBalanced(points []vec.Vector, ids []int, k, maxSize int, cfg Config, rng *rand.Rand) [][]int {
	if k == 1 || len(ids) <= 1 {
		return [][]int{ids}
	}
	pts := make([]vec.Vector, len(ids))
	for i, id := range ids {
		pts[i] = points[id]
	}
	r := kmeans.Cluster(pts, k, kmeans.Config{MaxIter: cfg.KMeansIter}, rng)

	groups := make([][]int, r.K)
	var overflow []int
	// Assign in order of distance to the centroid so the overflow (the
	// points bumped for capacity) are each cluster's outliers.
	type member struct {
		idx  int
		dist float64
	}
	byCluster := make([][]member, r.K)
	for i := range ids {
		c := r.Assign[i]
		byCluster[c] = append(byCluster[c], member{idx: i, dist: vec.SqL2(pts[i], r.Centroids[c])})
	}
	for c := range byCluster {
		sort.Slice(byCluster[c], func(a, b int) bool { return byCluster[c][a].dist < byCluster[c][b].dist })
		for j, m := range byCluster[c] {
			if j < maxSize {
				groups[c] = append(groups[c], ids[m.idx])
			} else {
				overflow = append(overflow, m.idx)
			}
		}
	}
	// Overflow points go to the nearest centroid with spare room.
	for _, idx := range overflow {
		best, bestD := -1, math.Inf(1)
		for c := range groups {
			if len(groups[c]) >= maxSize {
				continue
			}
			if d := vec.SqL2(pts[idx], r.Centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if best < 0 {
			// Should be impossible: k*maxSize >= len(ids) by construction.
			panic(fmt.Sprintf("kmtree: no capacity for overflow point (k=%d maxSize=%d n=%d)", k, maxSize, len(ids)))
		}
		groups[best] = append(groups[best], ids[idx])
	}
	// Drop empty groups (k-means can produce them on degenerate data).
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
