// Package pca implements principal component analysis via a cyclic Jacobi
// eigensolver on the covariance matrix.
//
// The paper uses PCA to project its 37-dimensional feature space onto three
// orthogonal axes and exhibit the four distinct "white sedan" clusters of
// Figure 1. The fig1 experiment reproduces that demonstration with this
// package.
package pca

import (
	"fmt"
	"math"
	"sort"

	"qdcbir/internal/vec"
)

// PCA holds a fitted principal-component basis.
type PCA struct {
	Mean       vec.Vector   // mean of the fitting data
	Components []vec.Vector // orthonormal rows, ordered by descending eigenvalue
	Eigen      []float64    // eigenvalues (variances along each component)
	Total      float64      // total variance (trace of the covariance matrix)
}

// Fit computes the top-k principal components of the data. It panics on an
// empty input or k < 1; k is clamped to the data dimensionality.
func Fit(data []vec.Vector, k int) *PCA {
	if len(data) == 0 {
		panic("pca: empty data")
	}
	if k < 1 {
		panic(fmt.Sprintf("pca: invalid k=%d", k))
	}
	dim := len(data[0])
	if k > dim {
		k = dim
	}
	mean := vec.Centroid(data)

	// Covariance matrix (population).
	cov := vec.NewMatrix(dim, dim)
	for _, p := range data {
		d := vec.Sub(p, mean)
		for i := 0; i < dim; i++ {
			row := cov.Row(i)
			di := d[i]
			for j := i; j < dim; j++ {
				row[j] += di * d[j]
			}
		}
	}
	inv := 1 / float64(len(data))
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			v := cov.At(i, j) * inv
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}

	values, vectors := jacobiEigen(cov)

	// Order by descending eigenvalue.
	idx := make([]int, dim)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })

	p := &PCA{Mean: mean}
	for i := 0; i < dim; i++ {
		p.Total += cov.At(i, i)
	}
	for r := 0; r < k; r++ {
		col := idx[r]
		comp := make(vec.Vector, dim)
		for i := 0; i < dim; i++ {
			comp[i] = vectors.At(i, col)
		}
		p.Components = append(p.Components, comp)
		p.Eigen = append(p.Eigen, values[col])
	}
	return p
}

// Project maps a point into the component space.
func (p *PCA) Project(x vec.Vector) vec.Vector {
	d := vec.Sub(x, p.Mean)
	out := make(vec.Vector, len(p.Components))
	for i, c := range p.Components {
		out[i] = vec.Dot(d, c)
	}
	return out
}

// ProjectAll maps every point into the component space.
func (p *PCA) ProjectAll(xs []vec.Vector) []vec.Vector {
	out := make([]vec.Vector, len(xs))
	for i, x := range xs {
		out[i] = p.Project(x)
	}
	return out
}

// ExplainedVariance returns the fraction of total data variance captured by
// each retained component (the total is the covariance trace recorded at fit
// time, so the fractions are meaningful even when k < dim).
func (p *PCA) ExplainedVariance() []float64 {
	out := make([]float64, len(p.Eigen))
	if p.Total == 0 {
		return out
	}
	for i, e := range p.Eigen {
		out[i] = e / p.Total
	}
	return out
}

// jacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi method,
// returning eigenvalues and the matrix of column eigenvectors.
func jacobiEigen(a *vec.Matrix) ([]float64, *vec.Matrix) {
	n := a.Rows
	// Work on a copy; accumulate rotations in v.
	m := vec.NewMatrix(n, n)
	copy(m.Data, a.Data)
	v := vec.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for i := 0; i < n; i++ {
					mip, miq := m.At(i, p), m.At(i, q)
					m.Set(i, p, c*mip-s*miq)
					m.Set(i, q, s*mip+c*miq)
				}
				for i := 0; i < n; i++ {
					mpi, mqi := m.At(p, i), m.At(q, i)
					m.Set(p, i, c*mpi-s*mqi)
					m.Set(q, i, s*mpi+c*mqi)
				}
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	return values, v
}
