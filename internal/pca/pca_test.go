package pca

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

func TestFitRecoversDominantAxis(t *testing.T) {
	// Data varies strongly along (1, 1)/sqrt(2), weakly along (1, -1).
	rng := rand.New(rand.NewSource(1))
	var data []vec.Vector
	for i := 0; i < 500; i++ {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 0.5
		data = append(data, vec.Vector{a + b, a - b})
	}
	p := Fit(data, 2)
	if len(p.Components) != 2 {
		t.Fatalf("components = %d", len(p.Components))
	}
	// First component parallels (1,1)/sqrt(2) up to sign.
	c := p.Components[0]
	if math.Abs(math.Abs(c[0])-math.Sqrt(0.5)) > 0.05 || math.Abs(math.Abs(c[1])-math.Sqrt(0.5)) > 0.05 {
		t.Errorf("first component = %v, want ±(0.707, 0.707)", c)
	}
	if p.Eigen[0] < p.Eigen[1] {
		t.Error("eigenvalues not descending")
	}
	// Eigenvalue along the dominant axis is about var(2a)/... : Var of
	// projection = Var(a*sqrt(2)) = 2*100 = 200.
	if p.Eigen[0] < 150 || p.Eigen[0] > 260 {
		t.Errorf("dominant eigenvalue = %v, want near 200", p.Eigen[0])
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var data []vec.Vector
	for i := 0; i < 300; i++ {
		v := make(vec.Vector, 6)
		for j := range v {
			v[j] = rng.NormFloat64() * float64(j+1)
		}
		data = append(data, v)
	}
	p := Fit(data, 6)
	for i := range p.Components {
		for j := range p.Components {
			dot := vec.Dot(p.Components[i], p.Components[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("<c%d, c%d> = %v want %v", i, j, dot, want)
			}
		}
	}
}

func TestProjectionVarianceMatchesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var data []vec.Vector
	for i := 0; i < 400; i++ {
		data = append(data, vec.Vector{rng.NormFloat64() * 5, rng.NormFloat64() * 2, rng.NormFloat64()})
	}
	p := Fit(data, 3)
	proj := p.ProjectAll(data)
	st := vec.ComputeStats(proj)
	for i := range p.Eigen {
		if math.Abs(st.Variance[i]-p.Eigen[i]) > 1e-6*math.Max(1, p.Eigen[i]) {
			t.Errorf("component %d: projected variance %v vs eigenvalue %v", i, st.Variance[i], p.Eigen[i])
		}
		// Projections are centred.
		if math.Abs(st.Mean[i]) > 1e-9 {
			t.Errorf("component %d: projected mean %v", i, st.Mean[i])
		}
	}
}

func TestExplainedVarianceSums(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var data []vec.Vector
	for i := 0; i < 200; i++ {
		data = append(data, vec.Vector{rng.NormFloat64() * 3, rng.NormFloat64(), rng.NormFloat64() * 0.1})
	}
	full := Fit(data, 3)
	ev := full.ExplainedVariance()
	var sum float64
	for _, e := range ev {
		sum += e
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("full explained variance sums to %v", sum)
	}
	// Truncated fit explains strictly less than 1 but still most variance.
	trunc := Fit(data, 1)
	tv := trunc.ExplainedVariance()
	if len(tv) != 1 || tv[0] >= 1 || tv[0] < 0.7 {
		t.Errorf("truncated explained variance = %v", tv)
	}
}

func TestKClampedToDim(t *testing.T) {
	data := []vec.Vector{{1, 2}, {3, 4}, {5, 7}}
	p := Fit(data, 10)
	if len(p.Components) != 2 {
		t.Errorf("components = %d, want clamped to 2", len(p.Components))
	}
}

func TestFitPanicsOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"empty": func() { Fit(nil, 2) },
		"k0":    func() { Fit([]vec.Vector{{1}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConstantDataZeroEigen(t *testing.T) {
	data := []vec.Vector{{5, 5}, {5, 5}, {5, 5}}
	p := Fit(data, 2)
	for i, e := range p.Eigen {
		if math.Abs(e) > 1e-12 {
			t.Errorf("eigenvalue %d = %v on constant data", i, e)
		}
	}
	proj := p.Project(vec.Vector{5, 5})
	for _, x := range proj {
		if math.Abs(x) > 1e-12 {
			t.Errorf("projection of mean = %v", proj)
		}
	}
	ev := p.ExplainedVariance()
	for _, e := range ev {
		if e != 0 {
			t.Errorf("explained variance on constant data = %v", ev)
		}
	}
}

// The Figure-1 scenario: four well-separated clusters in 37-d must remain
// four separated clusters after projecting to 3-d.
func TestFourClustersSurviveProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	centers := make([]vec.Vector, 4)
	for c := range centers {
		centers[c] = make(vec.Vector, 37)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 5
		}
	}
	var data []vec.Vector
	labels := make([]int, 0, 200)
	for c, ctr := range centers {
		for i := 0; i < 50; i++ {
			p := ctr.Clone()
			for j := range p {
				p[j] += rng.NormFloat64() * 0.3
			}
			data = append(data, p)
			labels = append(labels, c)
		}
	}
	p := Fit(data, 3)
	proj := p.ProjectAll(data)
	// Projected centroids per cluster.
	var projCenters [4]vec.Vector
	for c := 0; c < 4; c++ {
		var members []vec.Vector
		for i, l := range labels {
			if l == c {
				members = append(members, proj[i])
			}
		}
		projCenters[c] = vec.Centroid(members)
	}
	// Every point is nearer its own projected centroid than any other.
	misassigned := 0
	for i, pt := range proj {
		best, _ := vec.NearestIndex(pt, projCenters[:], vec.L2)
		if best != labels[i] {
			misassigned++
		}
	}
	if misassigned > 4 { // allow a couple of boundary flips
		t.Errorf("%d of %d points misassigned after 3-d projection", misassigned, len(proj))
	}
}
