// Package feature implements the 37-dimensional visual feature vector used by
// the prototype in the paper (§4): 9 colour-moment features, 10 wavelet-based
// texture features, and 18 edge-based structural features.
//
// Substitution note (see DESIGN.md): the paper cites Stricker & Orengo colour
// moments [17], Smith & Chang wavelet transform features [16], and Zhou &
// Huang edge structural features [22]. We implement the colour moments
// exactly as described (mean/σ/skewness per HSV channel), texture as Haar DWT
// subband energies (the standard realisation of [16]), and edge structure as
// a 12-bin Sobel orientation histogram plus six structural statistics — the
// same three feature families, the same dimensionality, and the same
// qualitative sensitivities, which is what the experiments exercise.
package feature

import (
	"fmt"
	"math"

	"qdcbir/internal/img"
	"qdcbir/internal/vec"
)

// Layout of the 37-d vector.
const (
	ColorDims   = 9  // mean, stddev, skewness of H, S, V
	TextureDims = 10 // 3-level Haar DWT: 3x3 detail subband energies + approximation energy
	EdgeDims    = 18 // 12-bin orientation histogram + 6 structural statistics

	// Dim is the total feature dimensionality.
	Dim = ColorDims + TextureDims + EdgeDims

	// Offsets of each family within the vector.
	ColorOffset   = 0
	TextureOffset = ColorDims
	EdgeOffset    = ColorDims + TextureDims
)

// Family identifies one of the three feature groups.
type Family int

// The three feature families.
const (
	FamilyColor Family = iota
	FamilyTexture
	FamilyEdge
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyColor:
		return "color"
	case FamilyTexture:
		return "texture"
	case FamilyEdge:
		return "edge"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Range returns the [lo, hi) dimension interval occupied by the family.
func (f Family) Range() (lo, hi int) {
	switch f {
	case FamilyColor:
		return ColorOffset, ColorOffset + ColorDims
	case FamilyTexture:
		return TextureOffset, TextureOffset + TextureDims
	case FamilyEdge:
		return EdgeOffset, EdgeOffset + EdgeDims
	default:
		panic(fmt.Sprintf("feature: unknown family %d", int(f)))
	}
}

// Mask returns a 0/1 weight vector selecting only the family's dimensions.
// The Multiple Viewpoints baseline uses masks as feature-subspace viewpoints
// in vector mode.
func (f Family) Mask() vec.Vector {
	m := make(vec.Vector, Dim)
	lo, hi := f.Range()
	for i := lo; i < hi; i++ {
		m[i] = 1
	}
	return m
}

// Extract computes the raw (un-normalized) 37-d feature vector of an image.
func Extract(im *img.Image) vec.Vector {
	v := make(vec.Vector, Dim)
	colorMoments(im, v[ColorOffset:ColorOffset+ColorDims])
	waveletTexture(im, v[TextureOffset:TextureOffset+TextureDims])
	edgeStructure(im, v[EdgeOffset:EdgeOffset+EdgeDims])
	return v
}

// ExtractChannel extracts features from the image viewed through an MV colour
// channel. ExtractChannel(im, ChannelOriginal) equals Extract(im).
func ExtractChannel(im *img.Image, ch img.Channel) vec.Vector {
	return Extract(img.Transform(im, ch))
}

// ExtractRegion extracts features from the axis-aligned subregion
// [x0,x1) x [y0,y1) only — the paper's §6 extension where the user draws a
// contour around the object of interest to keep background noise out of the
// query formulation. The region is clamped to the image; an empty region
// panics (as Crop does).
func ExtractRegion(im *img.Image, x0, y0, x1, y1 int) vec.Vector {
	return Extract(im.Crop(x0, y0, x1, y1))
}

// colorMoments fills out[0:9] with the first three moments (mean, standard
// deviation, skewness) of the H, S, and V channels, per Stricker & Orengo.
// Hue is scaled to [0,1] so all nine moments share a comparable range.
func colorMoments(im *img.Image, out vec.Vector) {
	n := float64(len(im.Pix))
	var mean [3]float64
	hsv := make([]img.HSV, len(im.Pix))
	for i, p := range im.Pix {
		h := img.ToHSV(p)
		h.H /= 360
		hsv[i] = h
		mean[0] += h.H
		mean[1] += h.S
		mean[2] += h.V
	}
	for c := range mean {
		mean[c] /= n
	}
	var m2, m3 [3]float64
	for _, h := range hsv {
		ch := [3]float64{h.H, h.S, h.V}
		for c := 0; c < 3; c++ {
			d := ch[c] - mean[c]
			m2[c] += d * d
			m3[c] += d * d * d
		}
	}
	for c := 0; c < 3; c++ {
		sd := math.Sqrt(m2[c] / n)
		// Cube root of the third central moment, sign-preserving, as in [17].
		sk := math.Cbrt(m3[c] / n)
		out[c*3] = mean[c]
		out[c*3+1] = sd
		out[c*3+2] = sk
	}
}

// waveletTexture fills out[0:10] with subband energies of a 3-level 2-D Haar
// wavelet decomposition of the luma plane: for each level the HL, LH, and HH
// detail energies (9 values) plus the final LL approximation energy.
// Energies are log-compressed (log1p) to tame their dynamic range.
func waveletTexture(im *img.Image, out vec.Vector) {
	gray := im.Gray()
	w, h := im.W, im.H
	const levels = 3
	idx := 0
	for level := 0; level < levels; level++ {
		if w < 2 || h < 2 {
			// Image too small for further decomposition: remaining detail
			// energies are zero.
			out[idx], out[idx+1], out[idx+2] = 0, 0, 0
			idx += 3
			continue
		}
		ll, hl, lh, hh, nw, nh := haarStep(gray, w, h)
		out[idx] = math.Log1p(meanEnergy(hl))
		out[idx+1] = math.Log1p(meanEnergy(lh))
		out[idx+2] = math.Log1p(meanEnergy(hh))
		idx += 3
		gray, w, h = ll, nw, nh
	}
	out[idx] = math.Log1p(meanEnergy(gray))
}

// haarStep performs one level of the 2-D Haar transform on a w x h plane and
// returns the four subbands, each (w/2) x (h/2).
func haarStep(p []float64, w, h int) (ll, hl, lh, hh []float64, nw, nh int) {
	nw, nh = w/2, h/2
	ll = make([]float64, nw*nh)
	hl = make([]float64, nw*nh)
	lh = make([]float64, nw*nh)
	hh = make([]float64, nw*nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			a := p[(2*y)*w+2*x]
			b := p[(2*y)*w+2*x+1]
			c := p[(2*y+1)*w+2*x]
			d := p[(2*y+1)*w+2*x+1]
			i := y*nw + x
			ll[i] = (a + b + c + d) / 4
			hl[i] = (a - b + c - d) / 4
			lh[i] = (a + b - c - d) / 4
			hh[i] = (a - b - c + d) / 4
		}
	}
	return ll, hl, lh, hh, nw, nh
}

func meanEnergy(p []float64) float64 {
	if len(p) == 0 {
		return 0
	}
	var s float64
	for _, v := range p {
		s += v * v
	}
	return s / float64(len(p))
}

// edgeStructure fills out[0:18] with edge-based structural features computed
// from Sobel gradients on the luma plane:
//
//	out[0:12]  normalized 12-bin edge-orientation histogram (magnitude-weighted)
//	out[12]    edge density (fraction of pixels above the magnitude threshold)
//	out[13]    mean gradient magnitude over edge pixels (log-compressed)
//	out[14]    horizontal edge-profile variance (structure spread across rows)
//	out[15]    vertical edge-profile variance (structure spread across columns)
//	out[16]    orientation entropy (how directionally diverse the edges are)
//	out[17]    edge centroid eccentricity (how off-centre the edge mass sits)
func edgeStructure(im *img.Image, out vec.Vector) {
	gray := im.Gray()
	w, h := im.W, im.H
	const bins = 12
	const magThreshold = 24.0

	hist := make([]float64, bins)
	rowProfile := make([]float64, h)
	colProfile := make([]float64, w)
	var edgeCount, totalMag, cx, cy float64
	interior := 0

	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			interior++
			gx := -gray[(y-1)*w+x-1] + gray[(y-1)*w+x+1] +
				-2*gray[y*w+x-1] + 2*gray[y*w+x+1] +
				-gray[(y+1)*w+x-1] + gray[(y+1)*w+x+1]
			gy := -gray[(y-1)*w+x-1] - 2*gray[(y-1)*w+x] - gray[(y-1)*w+x+1] +
				gray[(y+1)*w+x-1] + 2*gray[(y+1)*w+x] + gray[(y+1)*w+x+1]
			mag := math.Hypot(gx, gy)
			if mag < magThreshold {
				continue
			}
			edgeCount++
			totalMag += mag
			cx += float64(x) * mag
			cy += float64(y) * mag
			rowProfile[y] += mag
			colProfile[x] += mag
			// Orientation folded into [0, pi): edges are undirected.
			theta := math.Atan2(gy, gx)
			if theta < 0 {
				theta += math.Pi
			}
			bin := int(theta / math.Pi * bins)
			if bin >= bins {
				bin = bins - 1
			}
			hist[bin] += mag
		}
	}

	if edgeCount == 0 {
		// Flat image: all edge features are zero.
		for i := range out {
			out[i] = 0
		}
		return
	}

	// Normalized orientation histogram.
	for i := 0; i < bins; i++ {
		out[i] = hist[i] / totalMag
	}
	out[12] = edgeCount / float64(interior)
	out[13] = math.Log1p(totalMag / edgeCount)
	out[14] = profileVariance(rowProfile, totalMag)
	out[15] = profileVariance(colProfile, totalMag)

	var entropy float64
	for i := 0; i < bins; i++ {
		if p := out[i]; p > 0 {
			entropy -= p * math.Log(p)
		}
	}
	out[16] = entropy / math.Log(bins) // normalized to [0, 1]

	// Eccentricity: distance of the magnitude-weighted edge centroid from the
	// image centre, normalized by the half-diagonal.
	ecx := cx/totalMag - float64(w-1)/2
	ecy := cy/totalMag - float64(h-1)/2
	halfDiag := math.Hypot(float64(w-1)/2, float64(h-1)/2)
	if halfDiag > 0 {
		out[17] = math.Hypot(ecx, ecy) / halfDiag
	}
}

// profileVariance returns the normalized variance of the index distribution
// induced by a magnitude profile: how spread edge mass is along one axis.
func profileVariance(profile []float64, total float64) float64 {
	if total == 0 || len(profile) < 2 {
		return 0
	}
	var mean float64
	for i, m := range profile {
		mean += float64(i) * m
	}
	mean /= total
	var v float64
	for i, m := range profile {
		d := float64(i) - mean
		v += d * d * m
	}
	v /= total
	// Normalize by the maximum possible variance (all mass at the two ends).
	maxV := float64(len(profile)-1) * float64(len(profile)-1) / 4
	return v / maxV
}

// Extractor extracts and normalizes feature vectors against a fitted corpus.
// The zero value is not usable; construct with NewExtractor after extracting
// raw vectors for the whole corpus.
type Extractor struct {
	norm vec.Normalizer
}

// NewExtractor fits a min-max normalizer over the raw corpus vectors so every
// dimension contributes comparably to Euclidean distance (the paper's 37
// features have wildly different raw scales).
func NewExtractor(rawCorpus []vec.Vector) *Extractor {
	return &Extractor{norm: vec.FitMinMax(rawCorpus)}
}

// NewExtractorFromBounds reconstructs an extractor from persisted normalizer
// bounds (see NormalizerBounds).
func NewExtractorFromBounds(min, max vec.Vector) *Extractor {
	return &Extractor{norm: &vec.MinMaxNormalizer{Min: min.Clone(), Max: max.Clone()}}
}

// NormalizerBounds returns the fitted min-max bounds for persistence.
func (e *Extractor) NormalizerBounds() (min, max vec.Vector) {
	n := e.norm.(*vec.MinMaxNormalizer)
	return n.Min.Clone(), n.Max.Clone()
}

// Normalize maps a raw feature vector into the corpus-normalized space.
func (e *Extractor) Normalize(raw vec.Vector) vec.Vector { return e.norm.Apply(raw) }

// ExtractNormalized extracts and normalizes in one step.
func (e *Extractor) ExtractNormalized(im *img.Image) vec.Vector {
	return e.norm.Apply(Extract(im))
}
