package feature

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/img"
	"qdcbir/internal/vec"
)

func flat(c img.RGB, w, h int) *img.Image {
	im := img.New(w, h)
	im.Fill(c)
	return im
}

func TestDimLayout(t *testing.T) {
	if Dim != 37 {
		t.Fatalf("Dim = %d, paper specifies 37", Dim)
	}
	if ColorOffset != 0 || TextureOffset != 9 || EdgeOffset != 19 {
		t.Fatalf("offsets wrong: %d %d %d", ColorOffset, TextureOffset, EdgeOffset)
	}
	lo, hi := FamilyEdge.Range()
	if lo != 19 || hi != 37 {
		t.Errorf("edge range = [%d,%d)", lo, hi)
	}
}

func TestExtractDimensionality(t *testing.T) {
	v := Extract(flat(img.RGB{R: 10, G: 200, B: 30}, 32, 32))
	if len(v) != Dim {
		t.Fatalf("Extract returned %d dims", len(v))
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("dim %d is %v", i, x)
		}
	}
}

func TestFlatImageFeatures(t *testing.T) {
	v := Extract(flat(img.RGB{R: 255, G: 0, B: 0}, 32, 32))
	// Pure red: H = 0/360 -> mean 0; S mean 1; V mean 1; all stddev/skew 0.
	if v[0] != 0 {
		t.Errorf("hue mean = %v", v[0])
	}
	if v[3] != 1 {
		t.Errorf("sat mean = %v", v[3])
	}
	if v[6] != 1 {
		t.Errorf("val mean = %v", v[6])
	}
	for _, i := range []int{1, 2, 4, 5, 7, 8} {
		if v[i] != 0 {
			t.Errorf("moment dim %d = %v, want 0 on flat image", i, v[i])
		}
	}
	// Flat image has no texture detail and no edges.
	for i := TextureOffset; i < TextureOffset+9; i++ {
		if v[i] != 0 {
			t.Errorf("detail energy dim %d = %v", i, v[i])
		}
	}
	for i := EdgeOffset; i < EdgeOffset+EdgeDims; i++ {
		if v[i] != 0 {
			t.Errorf("edge dim %d = %v on flat image", i, v[i])
		}
	}
	// The LL approximation energy reflects overall brightness and is nonzero.
	if v[TextureOffset+9] <= 0 {
		t.Errorf("approximation energy = %v", v[TextureOffset+9])
	}
}

func TestColorMomentsSeparateHues(t *testing.T) {
	red := Extract(flat(img.RGB{R: 255, G: 0, B: 0}, 16, 16))
	green := Extract(flat(img.RGB{R: 0, G: 255, B: 0}, 16, 16))
	blue := Extract(flat(img.RGB{R: 0, G: 0, B: 255}, 16, 16))
	if red[0] >= green[0] || green[0] >= blue[0] {
		t.Errorf("hue means not ordered: r=%v g=%v b=%v", red[0], green[0], blue[0])
	}
}

func TestTextureRespondsToStripes(t *testing.T) {
	plain := flat(img.RGB{R: 128, G: 128, B: 128}, 64, 64)
	striped := plain.Clone()
	striped.Stripes(img.RGB{R: 255, G: 255, B: 255}, 4, 0, 1)
	vp := Extract(plain)
	vs := Extract(striped)
	var ep, es float64
	for i := TextureOffset; i < TextureOffset+9; i++ {
		ep += vp[i]
		es += vs[i]
	}
	if es <= ep {
		t.Errorf("striped detail energy %v not above plain %v", es, ep)
	}
}

func TestEdgeFeaturesRespondToShapes(t *testing.T) {
	plain := flat(img.RGB{R: 40, G: 40, B: 40}, 64, 64)
	shaped := plain.Clone()
	shaped.FillRect(16, 16, 48, 48, img.RGB{R: 220, G: 220, B: 220})
	vp := Extract(plain)
	vs := Extract(shaped)
	if vs[EdgeOffset+12] <= vp[EdgeOffset+12] {
		t.Errorf("edge density %v not above flat %v", vs[EdgeOffset+12], vp[EdgeOffset+12])
	}
	// A rectangle's edges are horizontal/vertical: bins near 0 and pi/2
	// should dominate the histogram.
	hist := vs[EdgeOffset : EdgeOffset+12]
	hv := hist[0] + hist[5] + hist[6] + hist[11] // bins around 0 and pi/2
	var rest float64
	for i, v := range hist {
		if i != 0 && i != 5 && i != 6 && i != 11 {
			rest += v
		}
	}
	if hv <= rest {
		t.Errorf("axis-aligned bins %v not dominant over %v", hv, rest)
	}
}

func TestEdgeOrientationDistinguishesDiagonal(t *testing.T) {
	horiz := flat(img.RGB{R: 30, G: 30, B: 30}, 64, 64)
	horiz.FillRect(0, 30, 64, 34, img.RGB{R: 230, G: 230, B: 230})
	diag := flat(img.RGB{R: 30, G: 30, B: 30}, 64, 64)
	diag.FillTriangle(0, 0, 63, 63, 0, 63, img.RGB{R: 230, G: 230, B: 230})
	vh := Extract(horiz)
	vd := Extract(diag)
	d := vec.L2(vh[EdgeOffset:EdgeOffset+12], vd[EdgeOffset:EdgeOffset+12])
	if d < 0.1 {
		t.Errorf("orientation histograms too close: %v", d)
	}
}

func TestHistogramNormalized(t *testing.T) {
	im := flat(img.RGB{R: 20, G: 20, B: 20}, 48, 48)
	im.FillEllipse(24, 24, 14, 9, img.RGB{R: 240, G: 240, B: 240})
	v := Extract(im)
	var sum float64
	for i := EdgeOffset; i < EdgeOffset+12; i++ {
		if v[i] < 0 {
			t.Errorf("negative histogram bin %d: %v", i, v[i])
		}
		sum += v[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sums to %v", sum)
	}
	if v[EdgeOffset+16] < 0 || v[EdgeOffset+16] > 1 {
		t.Errorf("entropy out of range: %v", v[EdgeOffset+16])
	}
	if v[EdgeOffset+17] < 0 || v[EdgeOffset+17] > 1 {
		t.Errorf("eccentricity out of range: %v", v[EdgeOffset+17])
	}
}

func TestExtractChannelOriginalMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := img.New(32, 32)
	im.FillVGradient(img.RGB{R: 200, G: 30, B: 30}, img.RGB{R: 30, G: 30, B: 200})
	im.Speckle(rng, 8)
	a := Extract(im)
	b := ExtractChannel(im, img.ChannelOriginal)
	if !a.Equal(b) {
		t.Error("ExtractChannel(original) differs from Extract")
	}
}

func TestChannelsProduceDistinctVectors(t *testing.T) {
	im := img.New(32, 32)
	im.FillVGradient(img.RGB{R: 250, G: 60, B: 20}, img.RGB{R: 20, G: 60, B: 250})
	im.FillEllipse(16, 16, 8, 8, img.RGB{R: 10, G: 220, B: 10})
	orig := ExtractChannel(im, img.ChannelOriginal)
	neg := ExtractChannel(im, img.ChannelNegative)
	gray := ExtractChannel(im, img.ChannelGray)
	if vec.L2(orig, neg) == 0 {
		t.Error("negative channel identical to original")
	}
	if vec.L2(orig, gray) == 0 {
		t.Error("gray channel identical to original")
	}
	// Gray images have zero saturation moments.
	if gray[3] != 0 {
		t.Errorf("gray channel saturation mean = %v", gray[3])
	}
}

func TestSameAppearanceClusters(t *testing.T) {
	// Two renders of the same appearance with jitter must be far closer than
	// two different appearances — the property the whole corpus design needs.
	rng := rand.New(rand.NewSource(9))
	render := func(base img.RGB, stripePeriod float64) *img.Image {
		im := img.New(48, 48)
		im.FillVGradient(base, img.Jitter(rng, base, 15))
		im.Stripes(img.RGB{R: 255, G: 255, B: 255}, stripePeriod, 0.6, 0.4)
		im.Speckle(rng, 4)
		return im
	}
	a1 := Extract(render(img.RGB{R: 200, G: 40, B: 40}, 6))
	a2 := Extract(render(img.RGB{R: 200, G: 40, B: 40}, 6))
	b := Extract(render(img.RGB{R: 40, G: 40, B: 220}, 14))
	intra := vec.L2(a1, a2)
	inter := vec.L2(a1, b)
	if intra >= inter {
		t.Errorf("intra-appearance distance %v >= inter-appearance %v", intra, inter)
	}
}

func TestExtractRegion(t *testing.T) {
	// Left half red-flat, right half checkered blue: region extraction must
	// see only its half.
	im := img.New(64, 64)
	im.FillRect(0, 0, 32, 64, img.RGB{R: 220, G: 30, B: 30})
	im.FillRect(32, 0, 64, 64, img.RGB{R: 30, G: 30, B: 220})
	im.Checker(img.RGB{R: 255, G: 255, B: 255}, 4, 0.8)

	left := ExtractRegion(im, 0, 0, 32, 64)
	right := ExtractRegion(im, 32, 0, 64, 64)
	whole := Extract(im)
	if vec.L2(left, right) == 0 {
		t.Fatal("left and right regions identical")
	}
	// The whole-image vector differs from both halves.
	if vec.L2(whole, left) == 0 || vec.L2(whole, right) == 0 {
		t.Error("whole image equals a half region")
	}
	// A full-frame region equals plain extraction.
	if !Extract(im).Equal(ExtractRegion(im, 0, 0, 64, 64)) {
		t.Error("full-frame region differs from Extract")
	}
	// Hue check: the left region's mean hue is red-ish (near 0 or ~1 after
	// scaling), the right's is blue-ish (~240/360).
	if right[0] < left[0] {
		t.Errorf("hue means: left %v right %v; expected blue > red", left[0], right[0])
	}
}

func TestExtractorNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var raws []vec.Vector
	for i := 0; i < 40; i++ {
		im := img.New(32, 32)
		im.FillVGradient(
			img.RGB{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))},
			img.RGB{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))})
		if i%2 == 0 {
			im.Checker(img.RGB{R: 255, G: 255, B: 255}, 4, 0.7)
		}
		raws = append(raws, Extract(im))
	}
	ex := NewExtractor(raws)
	for _, r := range raws {
		n := ex.Normalize(r)
		if len(n) != Dim {
			t.Fatalf("normalized dim = %d", len(n))
		}
		for i, x := range n {
			if x < -1e-9 || x > 1+1e-9 {
				t.Errorf("normalized dim %d out of [0,1]: %v", i, x)
			}
		}
	}
}

func TestFamilyMask(t *testing.T) {
	m := FamilyTexture.Mask()
	if len(m) != Dim {
		t.Fatalf("mask dim = %d", len(m))
	}
	var ones int
	for i, x := range m {
		if x == 1 {
			ones++
			if i < TextureOffset || i >= TextureOffset+TextureDims {
				t.Errorf("mask bit %d outside texture range", i)
			}
		} else if x != 0 {
			t.Errorf("mask value %v at %d", x, i)
		}
	}
	if ones != TextureDims {
		t.Errorf("mask has %d ones", ones)
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyColor.String() != "color" || FamilyTexture.String() != "texture" || FamilyEdge.String() != "edge" {
		t.Error("family names wrong")
	}
}

func TestSmallImageNoPanic(t *testing.T) {
	// Degenerate sizes must not panic even when the wavelet cannot recurse.
	for _, wh := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 2}} {
		v := Extract(flat(img.RGB{R: 99, G: 99, B: 99}, wh[0], wh[1]))
		if len(v) != Dim {
			t.Fatalf("size %v: dim %d", wh, len(v))
		}
		for i, x := range v {
			if math.IsNaN(x) {
				t.Errorf("size %v dim %d NaN", wh, i)
			}
		}
	}
}

func TestHaarStepEnergyConservationOnConstant(t *testing.T) {
	// On a constant plane, all detail bands must be exactly zero and LL must
	// reproduce the constant.
	p := make([]float64, 16)
	for i := range p {
		p[i] = 42
	}
	ll, hl, lh, hh, nw, nh := haarStep(p, 4, 4)
	if nw != 2 || nh != 2 {
		t.Fatalf("subband size %dx%d", nw, nh)
	}
	for i := range ll {
		if ll[i] != 42 {
			t.Errorf("LL[%d] = %v", i, ll[i])
		}
		if hl[i] != 0 || lh[i] != 0 || hh[i] != 0 {
			t.Errorf("detail bands nonzero at %d", i)
		}
	}
}
