package core

import "math"

// ProportionalAlloc distributes k result slots across subqueries
// proportionally to their relevant-image counts (§3.4): each group gets
// floor(k·count/total) slots but at least one, capped by its search-area
// capacity; leftovers are round-robined to groups that still have capacity;
// any overshoot (minimums exceeding k) is trimmed walking the group list
// from the back. counts[i] and caps[i] describe group i in final processing
// order; the caller guarantees len(counts) ≤ k and every count ≥ 1.
//
// This is the single copy of the allocation arithmetic shared by the
// single-node finalize (finalizeGroups), the sharded scatter-gather finalize
// (shard.FinalizeScatter), and the segmented engine's query-side
// decomposition (seg): all integer bookkeeping, so every caller allocates
// bit-identically.
func ProportionalAlloc(k int, counts, caps []int) []int {
	n := len(counts)
	alloc := make([]int, n)
	totalRel := 0
	for _, c := range counts {
		totalRel += c
	}
	assigned := 0
	for i := range alloc {
		share := int(math.Floor(float64(k) * float64(counts[i]) / float64(totalRel)))
		if share < 1 {
			share = 1
		}
		if share > caps[i] {
			share = caps[i]
		}
		alloc[i] = share
		assigned += share
	}
	for moved := true; moved && assigned < k; {
		moved = false
		for i := range alloc {
			if assigned >= k {
				break
			}
			if alloc[i] < caps[i] {
				alloc[i]++
				assigned++
				moved = true
			}
		}
	}
	for i := 0; assigned > k; i = (i + 1) % n {
		j := n - 1 - i%n
		if alloc[j] > 1 {
			alloc[j]--
			assigned--
		}
	}
	return alloc
}
