package core

import (
	"fmt"
	"math/rand"
	"sort"

	"qdcbir/internal/disk"
	"qdcbir/internal/rstar"
)

// SessionStateVersion is the wire-format version ExportState writes.
const SessionStateVersion = 1

// SessionState is the wire-serializable form of a feedback session: the query
// panel (relevant images in marking order and each one's assigned subcluster,
// by node page ID), display bookkeeping, optional feature weights, and the
// accumulated cost counters. It captures everything Finalize's result depends
// on — finalizeGroups reads only (relevant order, assignments, weights) — so
// a session exported here and restored anywhere (the same process, another
// replica of the same corpus, or a router planning a distributed finalize)
// finalizes bit-identically to the original.
//
// What it deliberately does NOT capture: the display RNG's internal position
// and the shuffled display cursors. A restored session redraws candidates
// from a fresh generator, so the browsing stream after a restore is
// deterministic given (state, seed) but not a continuation of the original
// stream. Rankings are unaffected — no RNG feeds Finalize.
//
// The struct round-trips through encoding/json without loss: Go marshals
// float64 values at shortest-exact precision and integer map keys as decimal
// strings, both of which decode back to identical bits.
type SessionState struct {
	Version  int   `json:"version"`
	Relevant []int `json:"relevant,omitempty"` // marking order
	// Assign maps each relevant image to its subcluster's node page ID.
	Assign map[int]uint64 `json:"assign,omitempty"`
	// Displayed maps each currently displayed image to the frontier node that
	// displayed it (Feedback only accepts displayed images).
	Displayed     map[int]uint64 `json:"displayed,omitempty"`
	EverShown     []int          `json:"ever_shown,omitempty"` // sorted
	Weights       []float64      `json:"weights,omitempty"`
	Rounds        int            `json:"rounds"`
	Expansions    int            `json:"expansions"`
	FeedbackReads uint64         `json:"feedback_reads"`
	FinalReads    uint64         `json:"final_reads"`
	Finalized     bool           `json:"finalized,omitempty"`
}

// ExportState snapshots the session for transport. The session remains
// usable; the snapshot shares nothing with it.
func (s *Session) ExportState() *SessionState {
	st := &SessionState{
		Version:    SessionStateVersion,
		Relevant:   append([]int(nil), idsToInts(s.relevant)...),
		Rounds:     s.stats.Rounds,
		Expansions: s.stats.Expansions,
		Finalized:  s.finalized,
	}
	full := s.Stats()
	st.FeedbackReads = full.FeedbackReads
	st.FinalReads = full.FinalReads
	if len(s.assign) > 0 {
		st.Assign = make(map[int]uint64, len(s.assign))
		for id, n := range s.assign {
			st.Assign[int(id)] = uint64(n.ID())
		}
	}
	if len(s.displayed) > 0 {
		st.Displayed = make(map[int]uint64, len(s.displayed))
		for id, n := range s.displayed {
			st.Displayed[int(id)] = uint64(n.ID())
		}
	}
	if len(s.everShown) > 0 {
		st.EverShown = make([]int, 0, len(s.everShown))
		for id := range s.everShown {
			st.EverShown = append(st.EverShown, int(id))
		}
		sort.Ints(st.EverShown)
	}
	if s.weights != nil {
		st.Weights = append([]float64(nil), s.weights...)
	}
	return st
}

// RestoreSession reconstructs a session from an exported state. The rng
// drives candidate displays from the restore point on; pass the same seed to
// make post-restore browsing reproducible. Node IDs are resolved against this
// engine's structure, so the state must come from a replica of the same
// build — unknown images or node IDs are rejected.
func (e *Engine) RestoreSession(st *SessionState, rng *rand.Rand) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil session state")
	}
	if st.Version != SessionStateVersion {
		return nil, fmt.Errorf("core: session state version %d unsupported (want %d)", st.Version, SessionStateVersion)
	}
	s := &Session{
		eng:        e,
		rng:        rng,
		relSet:     make(map[rstar.ItemID]bool),
		everShown:  make(map[rstar.ItemID]bool),
		feedbackIO: disk.NewLRUCache(1 << 16),
		finalIO:    disk.NewLRUCache(1 << 16),
		finalized:  st.Finalized,
	}
	s.stats.Rounds = st.Rounds
	s.stats.Expansions = st.Expansions
	s.baseFeedbackReads = st.FeedbackReads
	s.baseFinalReads = st.FinalReads
	n := e.rfs.Len()
	for _, id := range st.Relevant {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("core: session state image %d outside corpus of %d", id, n)
		}
		iid := rstar.ItemID(id)
		if s.relSet[iid] {
			return nil, fmt.Errorf("core: session state repeats relevant image %d", id)
		}
		s.relSet[iid] = true
		s.relevant = append(s.relevant, iid)
	}
	if len(st.Assign) > 0 {
		s.assign = make(map[rstar.ItemID]*rstar.Node, len(st.Assign))
		for id, nodeID := range st.Assign {
			if !s.relSet[rstar.ItemID(id)] {
				return nil, fmt.Errorf("core: session state assigns unmarked image %d", id)
			}
			node := e.rfs.NodeByID(disk.PageID(nodeID))
			if node == nil {
				return nil, fmt.Errorf("core: session state image %d assigned to unknown node %d", id, nodeID)
			}
			s.assign[rstar.ItemID(id)] = node
		}
	}
	if len(st.Displayed) > 0 {
		s.displayed = make(map[rstar.ItemID]*rstar.Node, len(st.Displayed))
		for id, nodeID := range st.Displayed {
			node := e.rfs.NodeByID(disk.PageID(nodeID))
			if node == nil {
				return nil, fmt.Errorf("core: session state displays image %d from unknown node %d", id, nodeID)
			}
			s.displayed[rstar.ItemID(id)] = node
		}
	}
	for _, id := range st.EverShown {
		s.everShown[rstar.ItemID(id)] = true
	}
	if st.Weights != nil {
		if err := s.SetFeatureWeights(st.Weights); err != nil {
			return nil, err
		}
	}
	s.rebuildFrontier()
	if o := e.cfg.Observer; o != nil {
		o.SessionStarted()
		s.trace = o.StartTrace("session")
	}
	return s, nil
}

func idsToInts(ids []rstar.ItemID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}
