package core

import (
	"math/rand"
	"testing"

	"qdcbir/internal/obs"
	"qdcbir/internal/rstar"
)

// observedFixture rebuilds the standard fixture with an Observer installed.
func observedFixture(t *testing.T, o *obs.Observer) (*Engine, func(rstar.ItemID) int) {
	t.Helper()
	eng, blobOf := fixture(t, 6, 40, 7)
	cfg := eng.Config()
	cfg.Observer = o
	return NewEngine(eng.RFS(), cfg), blobOf
}

// TestObserverMatchesSessionStats drives a full session and checks the
// observer's page-read counters agree exactly with the session's own
// disk accounting, and that the retained trace mirrors the interaction.
func TestObserverMatchesSessionStats(t *testing.T) {
	o := obs.New(nil)
	eng, blobOf := observedFixture(t, o)
	sess := eng.NewSession(rand.New(rand.NewSource(3)))
	markBlobs(t, sess, blobOf, map[int]bool{1: true, 4: true}, 3)
	if _, err := sess.Finalize(30); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()

	snap := o.Registry().Snapshot()
	if got := snap.Counters[obs.MetricFeedbackReads]; got != st.FeedbackReads {
		t.Errorf("observer feedback reads = %d, session stats = %d", got, st.FeedbackReads)
	}
	if got := snap.Counters[obs.MetricFinalReads]; got != st.FinalReads {
		t.Errorf("observer final reads = %d, session stats = %d", got, st.FinalReads)
	}
	if got := snap.Counters[obs.MetricExpansions]; got != uint64(st.Expansions) {
		t.Errorf("observer expansions = %d, session stats = %d", got, st.Expansions)
	}
	if got := snap.Counters[obs.MetricFeedbackRounds]; got != uint64(st.Rounds) {
		t.Errorf("observer rounds = %d, session stats = %d", got, st.Rounds)
	}
	if got := snap.Counters[obs.MetricSessionsStarted]; got != 1 {
		t.Errorf("sessions started = %d, want 1", got)
	}
	if got := snap.Counters[obs.MetricFinalizes]; got != 1 {
		t.Errorf("finalizes = %d, want 1", got)
	}

	traces := o.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Kind != "session" || len(tr.Rounds) != st.Rounds || tr.Finalize == nil {
		t.Fatalf("trace shape: kind=%q rounds=%d finalize=%v", tr.Kind, len(tr.Rounds), tr.Finalize != nil)
	}
	var roundReads uint64
	for i, r := range tr.Rounds {
		if r.Round != i+1 {
			t.Errorf("round %d numbered %d", i, r.Round)
		}
		if r.RepsDisplayed == 0 {
			t.Errorf("round %d recorded no displayed representatives", i+1)
		}
		roundReads += r.PageReads
	}
	if roundReads > st.FeedbackReads {
		t.Errorf("round spans claim %d feedback reads, session saw %d", roundReads, st.FeedbackReads)
	}
	fin := tr.Finalize
	if fin.Subqueries != len(fin.Subspans) || fin.Subqueries == 0 {
		t.Fatalf("finalize fan-out %d != %d subspans", fin.Subqueries, len(fin.Subspans))
	}
	if fin.PageReads != st.FinalReads {
		t.Errorf("finalize span reads = %d, session stats = %d", fin.PageReads, st.FinalReads)
	}
	var pops uint64
	for _, sq := range fin.Subspans {
		if sq.HeapPops == 0 || sq.NodesRead == 0 || sq.PageAccesses == 0 {
			t.Errorf("subquery %d recorded no effort: %+v", sq.Node, sq)
		}
		pops += sq.HeapPops
	}
	if fin.HeapPops < pops {
		t.Errorf("finalize heap pops %d < sum of subqueries %d", fin.HeapPops, pops)
	}
}

// TestObserverDoesNotPerturbResults checks the zero-cost-when-nil contract's
// other half: instrumentation must never change results or simulated I/O.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	run := func(o *obs.Observer) (*Result, Stats) {
		eng, blobOf := fixture(t, 6, 40, 7)
		if o != nil {
			cfg := eng.Config()
			cfg.Observer = o
			eng = NewEngine(eng.RFS(), cfg)
		}
		sess := eng.NewSession(rand.New(rand.NewSource(3)))
		markBlobs(t, sess, blobOf, map[int]bool{0: true, 2: true}, 3)
		res, err := sess.Finalize(25)
		if err != nil {
			t.Fatal(err)
		}
		return res, sess.Stats()
	}
	plainRes, plainStats := run(nil)
	obsRes, obsStats := run(obs.New(nil))
	if plainStats != obsStats {
		t.Fatalf("stats differ: plain %+v vs observed %+v", plainStats, obsStats)
	}
	a, b := plainRes.IDs(), obsRes.IDs()
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestObserverBlockScalarAgreement runs the same observed session with the
// PR 3 leaf-block batch kernels enabled and disabled and requires identical
// results, session stats, observer counters, and per-subquery trace effort —
// the two scoring paths must be indistinguishable to every telemetry surface.
func TestObserverBlockScalarAgreement(t *testing.T) {
	run := func(blocks bool) (*Result, Stats, obs.Snapshot, *obs.FinalizeSpan) {
		o := obs.New(nil)
		eng, blobOf := observedFixture(t, o)
		eng.RFS().Tree().SetBlockScoring(blocks)
		if got := eng.RFS().Tree().BlocksPacked(); got != blocks {
			t.Fatalf("SetBlockScoring(%v) left BlocksPacked=%v", blocks, got)
		}
		sess := eng.NewSession(rand.New(rand.NewSource(9)))
		markBlobs(t, sess, blobOf, map[int]bool{1: true, 3: true, 5: true}, 3)
		res, err := sess.Finalize(30)
		if err != nil {
			t.Fatal(err)
		}
		traces := o.Traces()
		if len(traces) != 1 || traces[0].Finalize == nil {
			t.Fatalf("trace shape: %+v", traces)
		}
		return res, sess.Stats(), o.Registry().Snapshot(), traces[0].Finalize
	}
	bRes, bStats, bSnap, bFin := run(true)
	sRes, sStats, sSnap, sFin := run(false)

	if bStats != sStats {
		t.Errorf("session stats diverge: block %+v scalar %+v", bStats, sStats)
	}
	a, b := bRes.IDs(), sRes.IDs()
	if len(a) != len(b) {
		t.Fatalf("result sizes diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d diverges: %d vs %d", i, a[i], b[i])
		}
	}
	for _, name := range []string{obs.MetricFeedbackReads, obs.MetricFinalReads, obs.MetricExpansions} {
		if bSnap.Counters[name] != sSnap.Counters[name] {
			t.Errorf("counter %s diverges: block %d scalar %d", name, bSnap.Counters[name], sSnap.Counters[name])
		}
	}
	if bFin.Subqueries != sFin.Subqueries || len(bFin.Subspans) != len(sFin.Subspans) {
		t.Fatalf("fan-out diverges: block %d/%d scalar %d/%d",
			bFin.Subqueries, len(bFin.Subspans), sFin.Subqueries, len(sFin.Subspans))
	}
	if bFin.PageReads != sFin.PageReads || bFin.HeapPops != sFin.HeapPops {
		t.Errorf("finalize effort diverges: block reads=%d pops=%d scalar reads=%d pops=%d",
			bFin.PageReads, bFin.HeapPops, sFin.PageReads, sFin.HeapPops)
	}
	for i := range bFin.Subspans {
		bs, ss := bFin.Subspans[i], sFin.Subspans[i]
		if bs.Node != ss.Node || bs.HeapPops != ss.HeapPops || bs.NodesRead != ss.NodesRead ||
			bs.PageAccesses != ss.PageAccesses {
			t.Errorf("subquery %d effort diverges:\n  block  %+v\n  scalar %+v", i, bs, ss)
		}
	}
}

// TestQueryByExamplesTrace checks the one-shot query path records a "query"
// trace whose finalize span accounts the call's reads.
func TestQueryByExamplesTrace(t *testing.T) {
	o := obs.New(nil)
	eng, _ := observedFixture(t, o)
	var ids []rstar.ItemID
	for i := 0; i < 5; i++ {
		ids = append(ids, rstar.ItemID(40+i)) // blob 1
	}
	_, st, err := eng.QueryByExamples(ids, 20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	traces := o.Traces()
	if len(traces) != 1 || traces[0].Kind != "query" {
		t.Fatalf("want one query trace, got %d (%+v)", len(traces), traces)
	}
	if traces[0].Finalize == nil || traces[0].Finalize.PageReads != st.FinalReads {
		t.Fatalf("query trace reads %+v disagree with stats %d", traces[0].Finalize, st.FinalReads)
	}
}
