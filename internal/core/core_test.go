package core

import (
	"math/rand"
	"testing"

	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// fixture builds an RFS over nBlobs well-separated Gaussian blobs and returns
// the engine plus a blob-label lookup (image id / blobSize).
func fixture(t *testing.T, nBlobs, blobSize int, seed int64) (*Engine, func(rstar.ItemID) int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pts []vec.Vector
	for b := 0; b < nBlobs; b++ {
		center := make(vec.Vector, 4)
		for j := range center {
			center[j] = float64(b*50 + j)
		}
		for i := 0; i < blobSize; i++ {
			p := center.Clone()
			for j := range p {
				p[j] += rng.NormFloat64()
			}
			pts = append(pts, p)
		}
	}
	s := rfs.Build(pts, rfs.BuildConfig{
		Tree:       rstar.Config{MaxFill: 16, MinFill: 6},
		TargetFill: 14,
		Seed:       seed,
	})
	if err := s.Validate(); err != nil {
		t.Fatalf("rfs: %v", err)
	}
	eng := NewEngine(s, Config{DisplayCount: 21})
	return eng, func(id rstar.ItemID) int { return int(id) / blobSize }
}

// markBlobs runs feedback rounds until the frontier reaches the leaves,
// each round marking every displayed candidate belonging to a wanted blob.
func markBlobs(t *testing.T, sess *Session, blobOf func(rstar.ItemID) int, wanted map[int]bool, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		cands := sess.Candidates()
		var marked []rstar.ItemID
		for _, c := range cands {
			if wanted[blobOf(c.ID)] {
				marked = append(marked, c.ID)
			}
		}
		if err := sess.Feedback(marked); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BoundaryThreshold != 0.4 {
		t.Errorf("threshold default = %v, paper uses 0.4", c.BoundaryThreshold)
	}
	if c.DisplayCount != 21 {
		t.Errorf("display default = %d, prototype shows 21", c.DisplayCount)
	}
}

func TestCandidatesComeFromRoot(t *testing.T) {
	eng, _ := fixture(t, 4, 40, 1)
	sess := eng.NewSession(rand.New(rand.NewSource(2)))
	cands := sess.Candidates()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if len(cands) > eng.Config().DisplayCount {
		t.Errorf("%d candidates exceed display limit %d", len(cands), eng.Config().DisplayCount)
	}
	for _, c := range cands {
		if c.Node != eng.RFS().Root() {
			t.Error("initial candidate not anchored at root")
		}
		if !eng.RFS().IsRep(c.ID) {
			t.Errorf("candidate %d is not a representative", c.ID)
		}
	}
}

func TestFeedbackRejectsUndisplayed(t *testing.T) {
	eng, _ := fixture(t, 3, 40, 3)
	sess := eng.NewSession(rand.New(rand.NewSource(1)))
	sess.Candidates()
	if err := sess.Feedback([]rstar.ItemID{99999}); err == nil {
		t.Fatal("undisplayed image accepted")
	}
}

func TestEmptyFeedbackKeepsFrontier(t *testing.T) {
	eng, _ := fixture(t, 3, 40, 4)
	sess := eng.NewSession(rand.New(rand.NewSource(1)))
	sess.Candidates()
	before := len(sess.Frontier())
	if err := sess.Feedback(nil); err != nil {
		t.Fatal(err)
	}
	if len(sess.Frontier()) != before {
		t.Error("empty feedback changed frontier")
	}
	if sess.Stats().Rounds != 1 {
		t.Errorf("rounds = %d", sess.Stats().Rounds)
	}
}

func TestQuerySplitsIntoMultipleSubqueries(t *testing.T) {
	eng, blobOf := fixture(t, 6, 50, 5)
	sess := eng.NewSession(rand.New(rand.NewSource(7)))
	wanted := map[int]bool{0: true, 3: true}
	markBlobs(t, sess, blobOf, wanted, 2)
	if len(sess.Frontier()) < 2 {
		t.Fatalf("frontier has %d nodes after marking two distant blobs; want a split", len(sess.Frontier()))
	}
	// Frontier descended below the root.
	for _, n := range sess.Frontier() {
		if n == eng.RFS().Root() {
			t.Error("frontier still at root after feedback")
		}
	}
}

func TestFinalizeRetrievesMultipleNeighborhoods(t *testing.T) {
	// The headline behaviour: QD returns images from every marked blob,
	// which a single-neighborhood k-NN cannot do.
	eng, blobOf := fixture(t, 6, 50, 6)
	sess := eng.NewSession(rand.New(rand.NewSource(8)))
	wanted := map[int]bool{1: true, 4: true}
	markBlobs(t, sess, blobOf, wanted, 3)
	res, err := sess.Finalize(40)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	totalImages := 0
	for _, g := range res.Groups {
		for _, im := range g.Images {
			got[blobOf(im.ID)]++
			totalImages++
		}
	}
	if totalImages != 40 {
		t.Errorf("returned %d images, want 40", totalImages)
	}
	if got[1] == 0 || got[4] == 0 {
		t.Fatalf("missing a marked neighborhood: blob counts %v", got)
	}
	// Precision: nearly everything from the wanted blobs.
	if rel := got[1] + got[4]; rel < 36 {
		t.Errorf("only %d of 40 from wanted blobs: %v", rel, got)
	}

	// Contrast: a global k-NN from the centroid of all relevant marks sits
	// between the blobs and misses both clusters' cores.
	var qpts []vec.Vector
	for _, id := range sess.Relevant() {
		qpts = append(qpts, eng.RFS().Point(id))
	}
	global := eng.RFS().Tree().KNN(vec.Centroid(qpts), 40, nil)
	globalHits := 0
	for _, n := range global {
		if wanted[blobOf(n.ID)] {
			globalHits++
		}
	}
	if qd := got[1] + got[4]; globalHits >= qd {
		t.Errorf("global kNN (%d hits) should underperform QD (%d hits) on scattered clusters", globalHits, qd)
	}
}

func TestProportionalAllocation(t *testing.T) {
	eng, blobOf := fixture(t, 6, 50, 9)
	sess := eng.NewSession(rand.New(rand.NewSource(3)))
	// Mark blob 0 aggressively and blob 2 sparingly: at most one candidate
	// per round.
	for r := 0; r < 3; r++ {
		cands := sess.Candidates()
		var marked []rstar.ItemID
		tookSparse := false
		for _, c := range cands {
			switch blobOf(c.ID) {
			case 0:
				marked = append(marked, c.ID)
			case 2:
				if !tookSparse {
					marked = append(marked, c.ID)
					tookSparse = true
				}
			}
		}
		if err := sess.Feedback(marked); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Finalize(30)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, g := range res.Groups {
		for _, im := range g.Images {
			counts[blobOf(im.ID)]++
		}
	}
	if counts[0] <= counts[2] {
		t.Errorf("heavily-marked blob got %d images, lightly-marked got %d; want proportional allocation", counts[0], counts[2])
	}
}

func TestFinalizeErrors(t *testing.T) {
	eng, blobOf := fixture(t, 3, 40, 10)
	sess := eng.NewSession(rand.New(rand.NewSource(4)))
	if _, err := sess.Finalize(10); err == nil {
		t.Fatal("finalize with no feedback succeeded")
	}
	// A finalized session rejects everything.
	sess2 := eng.NewSession(rand.New(rand.NewSource(5)))
	markBlobs(t, sess2, blobOf, map[int]bool{0: true}, 2)
	if _, err := sess2.Finalize(10); err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Finalize(10); err != ErrFinalized {
		t.Errorf("second finalize: %v", err)
	}
	if err := sess2.Feedback(nil); err != ErrFinalized {
		t.Errorf("feedback after finalize: %v", err)
	}
	// Invalid k.
	sess3 := eng.NewSession(rand.New(rand.NewSource(6)))
	markBlobs(t, sess3, blobOf, map[int]bool{0: true}, 1)
	if _, err := sess3.Finalize(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestGroupsOrderedByRankScore(t *testing.T) {
	eng, blobOf := fixture(t, 6, 50, 11)
	sess := eng.NewSession(rand.New(rand.NewSource(12)))
	markBlobs(t, sess, blobOf, map[int]bool{0: true, 2: true, 4: true}, 3)
	res, err := sess.Finalize(30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i].RankScore < res.Groups[i-1].RankScore {
			t.Errorf("groups not ordered by rank score at %d", i)
		}
	}
	// Within a group, images are ordered by similarity.
	for gi, g := range res.Groups {
		for i := 1; i < len(g.Images); i++ {
			if g.Images[i].Score < g.Images[i-1].Score {
				t.Errorf("group %d images not ordered at %d", gi, i)
			}
		}
		// RankScore equals the sum of member scores.
		var sum float64
		for _, im := range g.Images {
			sum += im.Score
		}
		if diff := sum - g.RankScore; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("group %d rank score %v != member sum %v", gi, g.RankScore, sum)
		}
	}
}

func TestFlatOrdering(t *testing.T) {
	eng, blobOf := fixture(t, 4, 50, 13)
	sess := eng.NewSession(rand.New(rand.NewSource(14)))
	markBlobs(t, sess, blobOf, map[int]bool{0: true, 2: true}, 3)
	res, err := sess.Finalize(20)
	if err != nil {
		t.Fatal(err)
	}
	flat := res.Flat()
	for i := 1; i < len(flat); i++ {
		if flat[i].Score < flat[i-1].Score {
			t.Fatalf("flat list not sorted at %d", i)
		}
	}
	if len(flat) != len(res.IDs()) {
		t.Errorf("Flat %d vs IDs %d", len(flat), len(res.IDs()))
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, blobOf := fixture(t, 4, 50, 15)
	sess := eng.NewSession(rand.New(rand.NewSource(16)))
	markBlobs(t, sess, blobOf, map[int]bool{1: true}, 2)
	if sess.Stats().FeedbackReads == 0 {
		t.Error("no feedback I/O recorded")
	}
	if sess.Stats().FinalReads != 0 {
		t.Error("final I/O recorded before Finalize — QD must not run k-NN during feedback")
	}
	if _, err := sess.Finalize(10); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.FinalReads == 0 {
		t.Error("no final k-NN I/O recorded")
	}
	if st.Rounds != 2 {
		t.Errorf("rounds = %d", st.Rounds)
	}
	// Localized k-NN touches far fewer pages than the tree holds (§5.2.2).
	if int(st.FinalReads) >= eng.RFS().Tree().NodeCount() {
		t.Errorf("final k-NN read %d pages of a %d-page tree — not localized",
			st.FinalReads, eng.RFS().Tree().NodeCount())
	}
}

func TestSessionDeterminism(t *testing.T) {
	eng, blobOf := fixture(t, 5, 40, 17)
	run := func() []int {
		sess := eng.NewSession(rand.New(rand.NewSource(42)))
		markBlobs(t, sess, blobOf, map[int]bool{0: true, 3: true}, 3)
		res, err := sess.Finalize(20)
		if err != nil {
			t.Fatal(err)
		}
		return res.IDs()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMoreGroupsThanK(t *testing.T) {
	eng, blobOf := fixture(t, 6, 50, 18)
	sess := eng.NewSession(rand.New(rand.NewSource(19)))
	markBlobs(t, sess, blobOf, map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}, 3)
	res, err := sess.Finalize(3) // fewer slots than subqueries
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.Groups {
		total += len(g.Images)
	}
	if total != 3 {
		t.Errorf("returned %d images for k=3", total)
	}
}

func TestQueryByExamples(t *testing.T) {
	eng, blobOf := fixture(t, 5, 50, 50)
	// Examples from two distant blobs, no session at all (the server half of
	// the §4 client/server split).
	examples := []rstar.ItemID{0, 1, 2, 150, 151}
	res, stats, err := eng.QueryByExamples(examples, 20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	total := 0
	for _, g := range res.Groups {
		for _, im := range g.Images {
			counts[blobOf(im.ID)]++
			total++
		}
	}
	if total != 20 {
		t.Errorf("returned %d of 20", total)
	}
	if counts[0] == 0 || counts[3] == 0 {
		t.Errorf("missed a neighborhood: %v", counts)
	}
	if stats.FinalReads == 0 {
		t.Error("no I/O recorded")
	}
	// Duplicated examples are deduplicated.
	res2, _, err := eng.QueryByExamples([]rstar.ItemID{0, 0, 0, 1}, 10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Groups) == 0 {
		t.Fatal("no groups")
	}
	// Error cases.
	if _, _, err := eng.QueryByExamples(nil, 5, nil, nil); err == nil {
		t.Error("empty examples accepted")
	}
	if _, _, err := eng.QueryByExamples(examples, 0, nil, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := eng.QueryByExamples([]rstar.ItemID{999999}, 5, nil, nil); err == nil {
		t.Error("unknown image accepted")
	}
	if _, _, err := eng.QueryByExamples(examples, 5, vec.Vector{1}, nil); err == nil {
		t.Error("bad weight dim accepted")
	}
	if _, _, err := eng.QueryByExamples(examples, 5, vec.Vector{1, 1, -1, 1}, nil); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestPanelAutoDescendsToLeaves(t *testing.T) {
	// ImageGrouper semantics: once marked, a relevant image's subquery keeps
	// descending one level per round even with no new marks, so after
	// height-1 rounds every subquery is anchored at a leaf.
	eng, blobOf := fixture(t, 4, 50, 40)
	sess := eng.NewSession(rand.New(rand.NewSource(41)))
	markBlobs(t, sess, blobOf, map[int]bool{0: true}, 1) // marks only in round 1
	height := eng.RFS().Tree().Height()
	for r := 0; r < height; r++ {
		if err := sess.Feedback(nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range sess.Frontier() {
		if !n.IsLeaf() {
			t.Errorf("frontier node %d still internal after %d empty rounds", n.ID(), height)
		}
	}
}

func TestRetract(t *testing.T) {
	eng, blobOf := fixture(t, 4, 50, 42)
	sess := eng.NewSession(rand.New(rand.NewSource(43)))
	markBlobs(t, sess, blobOf, map[int]bool{0: true, 2: true}, 2)
	rel := append([]rstar.ItemID(nil), sess.Relevant()...)
	if len(rel) < 2 {
		t.Skip("not enough marks")
	}
	// Retract every mark from blob 2: its branch disappears.
	var fromBlob2 []rstar.ItemID
	for _, id := range rel {
		if blobOf(id) == 2 {
			fromBlob2 = append(fromBlob2, id)
		}
	}
	if len(fromBlob2) == 0 {
		t.Skip("no blob-2 marks")
	}
	sess.Retract(fromBlob2)
	for _, id := range sess.Relevant() {
		if blobOf(id) == 2 {
			t.Fatalf("retracted image %d still relevant", id)
		}
	}
	res, err := sess.Finalize(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		for _, im := range g.Images {
			if blobOf(im.ID) == 2 {
				t.Errorf("result contains image %d from retracted blob", im.ID)
			}
		}
	}
	// Retracting everything resets to browsing the root.
	sess2 := eng.NewSession(rand.New(rand.NewSource(44)))
	markBlobs(t, sess2, blobOf, map[int]bool{1: true}, 1)
	sess2.Retract(sess2.Relevant())
	if len(sess2.Frontier()) != 1 || sess2.Frontier()[0] != eng.RFS().Root() {
		t.Error("full retraction did not reset to root")
	}
	// Retracting unknown ids is a no-op.
	before := len(sess2.Frontier())
	sess2.Retract([]rstar.ItemID{99999})
	if len(sess2.Frontier()) != before {
		t.Error("bogus retraction changed state")
	}
}

func TestFeatureWeights(t *testing.T) {
	eng, blobOf := fixture(t, 4, 50, 45)
	sess := eng.NewSession(rand.New(rand.NewSource(46)))
	// Validation.
	if err := sess.SetFeatureWeights(vec.Vector{1, 2}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if err := sess.SetFeatureWeights(vec.Vector{1, 1, -1, 1}); err == nil {
		t.Error("negative weight accepted")
	}
	w := vec.Vector{1, 1, 1, 1}
	if err := sess.SetFeatureWeights(w); err != nil {
		t.Fatal(err)
	}
	// Unit weights reproduce the unweighted result.
	markBlobs(t, sess, blobOf, map[int]bool{0: true}, 2)
	res, err := sess.Finalize(10)
	if err != nil {
		t.Fatal(err)
	}
	sess2 := eng.NewSession(rand.New(rand.NewSource(46)))
	markBlobs(t, sess2, blobOf, map[int]bool{0: true}, 2)
	res2, err := sess2.Finalize(10)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.IDs(), res2.IDs()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unit weights changed result at %d", i)
		}
	}
	// Nil restores unweighted mode without error.
	sess3 := eng.NewSession(rand.New(rand.NewSource(47)))
	if err := sess3.SetFeatureWeights(nil); err != nil {
		t.Fatal(err)
	}
}

func TestBrowsingCoversWholePool(t *testing.T) {
	// Paging without repetition: browsing ceil(pool/display)+1 displays must
	// show every root representative — the property that makes rare
	// subconcepts findable (§4's "Random" browsing).
	eng, _ := fixture(t, 6, 50, 30)
	sess := eng.NewSession(rand.New(rand.NewSource(31)))
	pool := eng.RFS().Reps(eng.RFS().Root(), nil)
	displays := (len(pool)+20)/21 + 1
	seen := map[rstar.ItemID]bool{}
	for d := 0; d < displays; d++ {
		for _, c := range sess.Candidates() {
			seen[c.ID] = true
		}
	}
	for _, id := range pool {
		if !seen[id] {
			t.Fatalf("representative %d never displayed in %d pages of %d reps", id, displays, len(pool))
		}
	}
}

func TestBoundaryExpansionTriggers(t *testing.T) {
	// With threshold 0 every off-centre query expands: expansions must be
	// recorded and results still valid.
	eng, blobOf := fixture(t, 4, 50, 20)
	strict := NewEngine(eng.RFS(), Config{BoundaryThreshold: 1e-9})
	sess := strict.NewSession(rand.New(rand.NewSource(21)))
	markBlobs(t, sess, blobOf, map[int]bool{0: true}, 3)
	res, err := sess.Finalize(10)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Stats().Expansions == 0 {
		t.Error("no expansions under near-zero threshold")
	}
	for _, g := range res.Groups {
		if g.SearchNode == g.Node {
			t.Error("search node not expanded despite near-zero threshold")
		}
	}
	// A permissive threshold never expands.
	loose := NewEngine(eng.RFS(), Config{BoundaryThreshold: 100})
	sess2 := loose.NewSession(rand.New(rand.NewSource(22)))
	markBlobs(t, sess2, blobOf, map[int]bool{0: true}, 3)
	if _, err := sess2.Finalize(10); err != nil {
		t.Fatal(err)
	}
	if sess2.Stats().Expansions != 0 {
		t.Error("expansions under permissive threshold")
	}
}
