package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// legacyAlloc is the allocation arithmetic as it was inlined in
// finalizeGroups before extraction, kept verbatim as the reference: the
// shared ProportionalAlloc must match it on every input, or the sharded and
// segmented finalize paths would drift from the single-node results.
func legacyAlloc(k int, counts, caps []int) []int {
	n := len(counts)
	totalRel := 0
	for _, c := range counts {
		totalRel += c
	}
	alloc := make([]int, n)
	assigned := 0
	for i := 0; i < n; i++ {
		share := int(math.Floor(float64(k) * float64(counts[i]) / float64(totalRel)))
		if share < 1 {
			share = 1
		}
		if share > caps[i] {
			share = caps[i]
		}
		alloc[i] = share
		assigned += share
	}
	for moved := true; moved && assigned < k; {
		moved = false
		for i := 0; i < n; i++ {
			if assigned >= k {
				break
			}
			if alloc[i] < caps[i] {
				alloc[i]++
				assigned++
				moved = true
			}
		}
	}
	for i := 0; assigned > k; i = (i + 1) % n {
		j := n - 1 - i%n
		if alloc[j] > 1 {
			alloc[j]--
			assigned--
		}
	}
	return alloc
}

func TestProportionalAllocMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		k := 1 + rng.Intn(60)
		n := 1 + rng.Intn(k) // caller guarantees n <= k
		counts := make([]int, n)
		caps := make([]int, n)
		for i := range counts {
			counts[i] = 1 + rng.Intn(10)
			caps[i] = 1 + rng.Intn(80)
		}
		got := ProportionalAlloc(k, counts, caps)
		want := legacyAlloc(k, counts, caps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: k=%d counts=%v caps=%v: got %v want %v", trial, k, counts, caps, got, want)
		}
	}
}

func TestProportionalAllocProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5000; trial++ {
		k := 1 + rng.Intn(60)
		n := 1 + rng.Intn(k)
		counts := make([]int, n)
		caps := make([]int, n)
		totalCap := 0
		for i := range counts {
			counts[i] = 1 + rng.Intn(10)
			caps[i] = 1 + rng.Intn(80)
			totalCap += caps[i]
		}
		alloc := ProportionalAlloc(k, counts, caps)
		sum := 0
		for i, a := range alloc {
			if a < 1 {
				t.Fatalf("trial %d: group %d allocated %d (< 1)", trial, i, a)
			}
			if a > caps[i] {
				t.Fatalf("trial %d: group %d allocated %d over cap %d", trial, i, a, caps[i])
			}
			sum += a
		}
		if totalCap >= k && sum != k {
			t.Fatalf("trial %d: allocated %d of %d with capacity %d", trial, sum, k, totalCap)
		}
		if totalCap < k && sum != totalCap {
			t.Fatalf("trial %d: capacity-bound sum %d != %d", trial, sum, totalCap)
		}
	}
}
