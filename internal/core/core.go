// Package core implements the paper's primary contribution: the Query
// Decomposition (QD) model for relevance feedback in content-based image
// retrieval (§3).
//
// A Session tracks one user query. It starts with the representatives of the
// RFS root; every feedback round maps the images the user marked relevant to
// the child clusters they came from and splits the query into independent
// localized subqueries — a multi-path descent of the RFS hierarchy. No k-NN
// computation happens until Finalize, which runs one localized multipoint
// k-NN per final subcluster (expanding to the parent node when query images
// sit near the cluster boundary, §3.3), then merges the local results with
// allocation proportional to each subcluster's relevant count and ranks the
// groups by their summed similarity scores (§3.4).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/pprof"
	"sort"
	"time"

	"qdcbir/internal/disk"
	"qdcbir/internal/obs"
	"qdcbir/internal/par"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// Config holds the engine parameters.
type Config struct {
	// BoundaryThreshold is the §3.3 ratio above which a localized query
	// expands to the parent node. The paper sets 0.4 for its 15,000-image
	// corpus.
	BoundaryThreshold float64
	// DisplayCount is how many candidate representatives one display round
	// shows (the prototype GUI shows 21, §4).
	DisplayCount int
	// Parallelism bounds the worker pool that runs the final localized
	// subqueries (<= 0 uses one worker per CPU). Results and simulated I/O
	// counts are identical at every setting: each subquery records its node
	// accesses privately and the traces are replayed into the session cache
	// in deterministic group order.
	Parallelism int
	// Observer receives telemetry (metrics and per-query trace spans) from
	// every session and query this engine runs. Nil — the default — disables
	// instrumentation entirely: the hot paths pay one nil-check and perform
	// no clock reads, no atomics, and no allocation. Results are identical
	// either way.
	Observer *obs.Observer
	// Quantized routes unweighted localized k-NN searches through the SQ8
	// two-phase scan (quantized sweep + exact rerank; see
	// rstar.KNNQuantFromStatsCtx). Results are bit-identical to the exact
	// path — the rerank guarantee falls back rather than approximate.
	// NewEngine trains the tree's quantizer if none is installed yet.
	// Weighted searches (§6 feature importance) always use the exact path.
	Quantized bool
	// RerankFactor is the quantized scan's candidate multiplier: the sweep
	// retains RerankFactor*k rows for exact reranking. <= 0 uses
	// rstar.DefaultRerankFactor.
	RerankFactor int
	// Float32 routes unweighted localized k-NN searches through the float32
	// sweep (rstar.KNNF32FromStatsCtx): half-width rows, double the SIMD
	// lanes. Unlike Quantized this is a distinct PRECISION, not an
	// optimization of the float64 path — distances are computed in float32
	// and may rank close neighbours differently — so it takes precedence
	// over Quantized (withDefaults clears that flag) rather than compose
	// with it. Results are deterministic across platforms and build tags
	// (the float32 kernels share one canonical accumulation order).
	// Weighted searches (§6 feature importance) always use the exact
	// float64 path.
	Float32 bool
}

func (c Config) withDefaults() Config {
	if c.BoundaryThreshold <= 0 {
		c.BoundaryThreshold = 0.4
	}
	if c.DisplayCount <= 0 {
		c.DisplayCount = 21
	}
	if c.Float32 {
		c.Quantized = false // Float32 selects a precision; SQ8 serves the f64 path
	}
	return c
}

// Engine is the query processor over one RFS structure.
type Engine struct {
	rfs *rfs.Structure
	cfg Config
}

// NewEngine returns a QD engine over the structure. When cfg.Quantized is
// set and the structure's tree has no quantizer installed yet (an archive
// restore installs one via AdoptQuantized), the tree trains one here; like
// construction itself, this requires exclusion against concurrent searches.
func NewEngine(s *rfs.Structure, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Float32 && !s.Tree().Float32Scoring() {
		s.Tree().SetFloat32Scoring(true)
	}
	if cfg.Quantized && !s.Tree().QuantizedScoring() {
		if err := s.Tree().SetQuantizedScoring(true); err != nil {
			// Quantization is a pure optimization: an untrainable corpus
			// (e.g. dimensionality past the SQ8 limit) reverts to exact
			// scoring rather than failing engine construction.
			cfg.Quantized = false
		}
	}
	return &Engine{rfs: s, cfg: cfg}
}

// RFS returns the engine's structure.
func (e *Engine) RFS() *rfs.Structure { return e.rfs }

// Config returns the engine configuration (with defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// Candidate is one displayable representative image together with the
// frontier node it represents.
type Candidate struct {
	ID   rstar.ItemID
	Node *rstar.Node
}

// Stats accumulates the session's simulated I/O, split the way the paper's
// scalability argument splits work: feedback processing (runs against the
// small representative set, client-side) versus the final localized k-NN
// (server-side).
type Stats struct {
	FeedbackReads uint64 // RFS node reads during display/descent
	FinalReads    uint64 // tree node reads during localized k-NN
	Expansions    int    // boundary expansions performed at Finalize
	Rounds        int    // feedback rounds processed
}

// Session is one user's relevance-feedback interaction.
type Session struct {
	eng *Engine
	rng *rand.Rand

	frontier []*rstar.Node
	relevant []rstar.ItemID
	relSet   map[rstar.ItemID]bool
	// assign is the query panel: each relevant image's currently associated
	// subcluster, re-localized one level per round (§3.3 "the system records
	// each relevant image and its associated subcluster").
	assign map[rstar.ItemID]*rstar.Node

	displayed map[rstar.ItemID]*rstar.Node // last display: rep -> frontier node
	everShown map[rstar.ItemID]bool
	cursors   map[disk.PageID]*displayCursor
	weights   vec.Vector // optional §6 feature-importance weighting
	// Session-lifetime page caches: §5.2.2's cost model counts one read per
	// distinct node — representatives marked from the same cluster share the
	// node access, and a node stays buffered for the rest of the session.
	feedbackIO *disk.LRUCache
	finalIO    *disk.LRUCache
	stats      Stats
	finalized  bool
	// baseFeedbackReads/baseFinalReads carry the read counters of a restored
	// session's earlier life (RestoreSession); the live caches count only
	// post-restore reads.
	baseFeedbackReads uint64
	baseFinalReads    uint64

	// trace is the session's observability span (nil when the engine has no
	// Observer). lastFbReads/lastFbAccesses checkpoint the feedback cache
	// counters so each round's span reports deltas, attributing the browsing
	// I/O between two rounds to the later round.
	trace          *obs.Trace
	lastFbReads    uint64
	lastFbAccesses uint64
}

// NewSession starts a query session; the rng drives the random candidate
// displays.
func (e *Engine) NewSession(rng *rand.Rand) *Session {
	s := &Session{
		eng:        e,
		rng:        rng,
		frontier:   []*rstar.Node{e.rfs.Root()},
		relSet:     make(map[rstar.ItemID]bool),
		everShown:  make(map[rstar.ItemID]bool),
		feedbackIO: disk.NewLRUCache(1 << 16),
		finalIO:    disk.NewLRUCache(1 << 16),
	}
	if o := e.cfg.Observer; o != nil {
		o.SessionStarted()
		s.trace = o.StartTrace("session")
	}
	return s
}

// Trace returns the session's trace span (nil when the engine has no
// observer). Callers may attach a correlation label via Trace.SetLabel.
func (s *Session) Trace() *obs.Trace { return s.trace }

// Frontier returns the current subquery anchor nodes (shared slice; do not
// modify).
func (s *Session) Frontier() []*rstar.Node { return s.frontier }

// Relevant returns all images marked relevant so far (shared; do not modify).
func (s *Session) Relevant() []rstar.ItemID { return s.relevant }

// Stats returns the session's accumulated cost statistics.
func (s *Session) Stats() Stats {
	st := s.stats
	st.FeedbackReads = s.baseFeedbackReads + s.feedbackIO.Reads()
	st.FinalReads = s.baseFinalReads + s.finalIO.Reads()
	return st
}

// Candidates draws up to DisplayCount representatives across the frontier,
// sampling each node proportionally to its representative count (so large
// clusters contribute more, mirroring the prototype's random browsing). The
// returned slice records which frontier node each candidate represents;
// Feedback only accepts images that have been displayed.
func (s *Session) Candidates() []Candidate {
	limit := s.eng.cfg.DisplayCount
	type pool struct {
		node *rstar.Node
		reps []rstar.ItemID
	}
	var pools []pool
	total := 0
	for _, n := range s.frontier {
		reps := s.eng.rfs.Reps(n, s.feedbackIO)
		if len(reps) == 0 {
			continue
		}
		pools = append(pools, pool{node: n, reps: reps})
		total += len(reps)
	}
	if total == 0 {
		return nil
	}
	if s.displayed == nil {
		s.displayed = make(map[rstar.ItemID]*rstar.Node)
	}
	var out []Candidate
	if total <= limit {
		for _, p := range pools {
			for _, id := range p.reps {
				out = append(out, Candidate{ID: id, Node: p.node})
			}
		}
	} else {
		// Proportional allocation with at least one slot per pool, then a
		// random draw without replacement inside each pool.
		remaining := limit
		for i, p := range pools {
			share := int(math.Round(float64(limit) * float64(len(p.reps)) / float64(total)))
			if share < 1 {
				share = 1
			}
			if i == len(pools)-1 {
				share = remaining
			}
			if share > len(p.reps) {
				share = len(p.reps)
			}
			if share > remaining {
				share = remaining
			}
			for _, id := range s.take(p.node.ID(), p.reps, share) {
				out = append(out, Candidate{ID: id, Node: p.node})
			}
			remaining -= share
			if remaining <= 0 {
				break
			}
		}
	}
	for _, c := range out {
		s.displayed[c.ID] = c.Node
		s.everShown[c.ID] = true
	}
	s.trace.AddDisplayed(len(out))
	return out
}

// displayCursor pages through one node's representatives in a shuffled order
// without repetition, reshuffling once exhausted — the effective behaviour of
// a user repeatedly pressing the GUI's "Random" button until they have seen
// the candidate pool (§4). With-replacement sampling would leave rarely-drawn
// representatives unseen no matter how long the user browses.
type displayCursor struct {
	order []rstar.ItemID
	pos   int
}

// take returns the next n representatives under the cursor.
func (s *Session) take(nodeID disk.PageID, reps []rstar.ItemID, n int) []rstar.ItemID {
	if s.cursors == nil {
		s.cursors = make(map[disk.PageID]*displayCursor)
	}
	cur, ok := s.cursors[nodeID]
	if !ok || len(cur.order) != len(reps) {
		cur = &displayCursor{order: append([]rstar.ItemID(nil), reps...)}
		s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
		s.cursors[nodeID] = cur
	}
	out := make([]rstar.ItemID, 0, n)
	for len(out) < n {
		if cur.pos >= len(cur.order) {
			s.rng.Shuffle(len(cur.order), func(i, j int) { cur.order[i], cur.order[j] = cur.order[j], cur.order[i] })
			cur.pos = 0
		}
		out = append(out, cur.order[cur.pos])
		cur.pos++
		if len(out) >= len(cur.order) {
			break // pool smaller than the request: one full pass is enough
		}
	}
	return out
}

// ErrFinalized is returned when a session is used after Finalize.
var ErrFinalized = errors.New("core: session already finalized")

// Feedback processes one round of user relevance feedback: the marked images
// must have appeared in a previous Candidates call.
//
// The session mirrors the prototype's ImageGrouper protocol (§4): relevant
// images persist in the query panel, and every round the system re-localizes
// each one — the subquery anchored at an image's current subcluster descends
// one level toward the image's leaf (§3.2, "the system records each relevant
// image and its associated subcluster"). New marks join the panel at the
// child of the cluster that displayed them. The frontier — the set of active
// localized subqueries — is the set of distinct subclusters currently
// assigned to relevant images, so the query splits exactly when relevant
// images diverge into different clusters and discards branches in which the
// user never marked anything.
func (s *Session) Feedback(marked []rstar.ItemID) error {
	if s.finalized {
		return ErrFinalized
	}
	o := s.eng.cfg.Observer
	var t0 time.Time
	var offsetNS int64
	if o != nil {
		offsetNS = s.trace.SinceStart()
		t0 = time.Now()
	}
	s.stats.Rounds++
	if s.assign == nil {
		s.assign = make(map[rstar.ItemID]*rstar.Node)
	}
	// New marks enter the panel at the displaying cluster's child containing
	// them. Determining the child reads the node's entry table — one page
	// access (§5.2.2).
	for _, id := range marked {
		node, ok := s.displayed[id]
		if !ok {
			return fmt.Errorf("core: image %d was not displayed", id)
		}
		if !s.relSet[id] {
			s.relSet[id] = true
			s.relevant = append(s.relevant, id)
		}
		s.feedbackIO.Access(node.ID())
		child := s.eng.rfs.ChildContaining(node, id)
		if child == nil {
			child = node // displaying node is a leaf: maximally localized
		}
		// A re-mark from a shallower display must not regress a deeper
		// assignment.
		if cur, ok := s.assign[id]; !ok || s.eng.rfs.SubtreeSize(child) < s.eng.rfs.SubtreeSize(cur) {
			s.assign[id] = child
		}
	}
	// Re-localize the whole panel: every relevant image's subquery descends
	// one level toward its leaf.
	for _, id := range s.relevant {
		n := s.assign[id]
		if n == nil || n.IsLeaf() {
			continue
		}
		s.feedbackIO.Access(n.ID())
		if child := s.eng.rfs.ChildContaining(n, id); child != nil {
			s.assign[id] = child
		}
	}
	s.rebuildFrontier()
	if o != nil {
		reads, accesses := s.feedbackIO.Reads(), s.feedbackIO.Accesses()
		o.RoundDone(s.trace, obs.RoundSpan{
			Round:        s.stats.Rounds,
			OffsetNS:     offsetNS,
			Marked:       len(marked),
			Relevant:     len(s.relevant),
			Subqueries:   len(s.frontier),
			NodesVisited: accesses - s.lastFbAccesses,
			PageReads:    reads - s.lastFbReads,
			DurationNS:   time.Since(t0).Nanoseconds(),
		})
		s.lastFbReads, s.lastFbAccesses = reads, accesses
	}
	return nil
}

// SetFeatureWeights installs a per-dimension importance weighting (e.g.
// emphasizing the colour family) applied by the final localized k-NN — the
// user-defined feature-importance extension of §6. Pass nil to restore plain
// Euclidean scoring. Weights must be non-negative and match the corpus
// dimensionality; invalid weights are rejected.
func (s *Session) SetFeatureWeights(w vec.Vector) error {
	if w == nil {
		s.weights = nil
		return nil
	}
	if len(w) != len(s.eng.rfs.Point(0)) {
		return fmt.Errorf("core: weight dim %d != corpus dim %d", len(w), len(s.eng.rfs.Point(0)))
	}
	for i, x := range w {
		if x < 0 {
			return fmt.Errorf("core: negative weight at dim %d", i)
		}
	}
	s.weights = w.Clone()
	return nil
}

// Retract removes previously marked images from the query panel (the
// ImageGrouper interface lets users drag images back out). Subqueries kept
// alive only by retracted marks are discarded; retracting everything returns
// the session to browsing the root.
func (s *Session) Retract(ids []rstar.ItemID) {
	if s.finalized {
		return
	}
	drop := make(map[rstar.ItemID]bool, len(ids))
	for _, id := range ids {
		if s.relSet[id] {
			drop[id] = true
			delete(s.relSet, id)
			delete(s.assign, id)
		}
	}
	if len(drop) == 0 {
		return
	}
	kept := s.relevant[:0]
	for _, id := range s.relevant {
		if !drop[id] {
			kept = append(kept, id)
		}
	}
	s.relevant = kept
	s.rebuildFrontier()
}

// rebuildFrontier derives the active subqueries from the panel assignments.
func (s *Session) rebuildFrontier() {
	if len(s.assign) == 0 {
		// Empty panel (nothing marked, or everything retracted): browse the
		// whole database again.
		s.frontier = []*rstar.Node{s.eng.rfs.Root()}
		return
	}
	next := make(map[disk.PageID]*rstar.Node, len(s.assign))
	for _, n := range s.assign {
		next[n.ID()] = n
	}
	s.frontier = s.frontier[:0]
	for _, n := range next {
		s.frontier = append(s.frontier, n)
	}
	// Deterministic order for reproducible displays.
	sort.Slice(s.frontier, func(i, j int) bool { return s.frontier[i].ID() < s.frontier[j].ID() })
}

// ScoredImage is one result image with its similarity score (Euclidean
// distance to the local query centroid; smaller is more similar).
type ScoredImage struct {
	ID    rstar.ItemID
	Score float64
}

// Group is the result of one localized subquery.
type Group struct {
	// Node is the subcluster the subquery was anchored at (before boundary
	// expansion).
	Node *rstar.Node
	// SearchNode is the node actually searched after §3.3 expansion.
	SearchNode *rstar.Node
	// QueryIDs are the relevant images that formed the local multipoint
	// query.
	QueryIDs []rstar.ItemID
	// Images are the group's results, most similar first.
	Images []ScoredImage
	// RankScore is the sum of the group's similarity scores (§3.4).
	RankScore float64
}

// Result is a finalized query: per-subcluster groups ordered by RankScore.
type Result struct {
	Groups []Group
}

// Flat returns all result images in a single list ranked by individual
// similarity score — the presentation alternative §3.4 mentions.
func (r *Result) Flat() []ScoredImage {
	var out []ScoredImage
	for _, g := range r.Groups {
		out = append(out, g.Images...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs returns the result image IDs in group order (groups by rank, images by
// score within each group) — the paper's grouped presentation flattened.
func (r *Result) IDs() []int {
	var out []int
	for _, g := range r.Groups {
		for _, im := range g.Images {
			out = append(out, int(im.ID))
		}
	}
	return out
}

// Finalize runs the final localized multipoint k-NN subqueries (§3.3) and
// merges their results (§3.4), returning k images in total. The session can
// still report Stats afterwards but accepts no further feedback.
func (s *Session) Finalize(k int) (*Result, error) {
	return s.FinalizeCtx(context.Background(), k)
}

// FinalizeCtx is Finalize with cancellation. A cancelled context aborts the
// localized k-NN subqueries mid-flight; the session still counts as finalized
// (feedback state has been consumed) but no partial result is returned.
func (s *Session) FinalizeCtx(ctx context.Context, k int) (*Result, error) {
	if s.finalized {
		return nil, ErrFinalized
	}
	s.finalized = true
	if k <= 0 {
		return nil, fmt.Errorf("core: invalid k=%d", k)
	}
	if len(s.relevant) == 0 {
		return nil, errors.New("core: no relevant feedback given")
	}
	if o := s.eng.cfg.Observer; o != nil {
		// Browsing I/O after the last feedback round has no round span to carry
		// it; flush it into the feedback-reads counter so the observer's totals
		// match the session's Stats.
		reads := s.feedbackIO.Reads()
		o.AddFeedbackReads(reads - s.lastFbReads)
		s.lastFbReads = reads
	}
	return finalizeGroups(ctx, s.eng, s.relevant, s.assign, k, s.weights, s.finalIO, &s.stats, s.trace)
}

// QueryByExamples runs the final localized query processing directly from a
// set of example (relevant) images, grouping them by their leaf subclusters —
// the server half of the paper's client/server split (§4): the client runs
// relevance feedback against its representative payload and submits only the
// final query images here. acc may be nil. The returned stats cover only this
// call.
func (e *Engine) QueryByExamples(relevant []rstar.ItemID, k int, weights vec.Vector, acc disk.Accounter) (*Result, Stats, error) {
	return e.QueryByExamplesCtx(context.Background(), relevant, k, weights, acc)
}

// QueryByExamplesCtx is QueryByExamples with cancellation: the localized
// subqueries poll ctx and abort early when it is done.
func (e *Engine) QueryByExamplesCtx(ctx context.Context, relevant []rstar.ItemID, k int, weights vec.Vector, acc disk.Accounter) (*Result, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: invalid k=%d", k)
	}
	if len(relevant) == 0 {
		return nil, stats, errors.New("core: no example images given")
	}
	if weights != nil {
		if len(weights) != len(e.rfs.Point(0)) {
			return nil, stats, fmt.Errorf("core: weight dim %d != corpus dim %d", len(weights), len(e.rfs.Point(0)))
		}
		for i, w := range weights {
			if w < 0 {
				return nil, stats, fmt.Errorf("core: negative weight at dim %d", i)
			}
		}
	}
	assign := make(map[rstar.ItemID]*rstar.Node, len(relevant))
	var ids []rstar.ItemID
	seen := make(map[rstar.ItemID]bool, len(relevant))
	for _, id := range relevant {
		if seen[id] {
			continue
		}
		leaf := e.rfs.LeafOf(id)
		if leaf == nil {
			return nil, stats, fmt.Errorf("core: unknown image %d", id)
		}
		seen[id] = true
		assign[id] = leaf
		ids = append(ids, id)
	}
	if acc == nil {
		acc = disk.NewLRUCache(1 << 16)
	}
	var t *obs.Trace
	if o := e.cfg.Observer; o != nil {
		t = o.StartTrace("query")
		t.SetLabel(obs.TraceLabelFromContext(ctx))
	}
	before := acc.Reads()
	res, err := finalizeGroups(ctx, e, ids, assign, k, weights, acc, &stats, t)
	stats.FinalReads = acc.Reads() - before
	return res, stats, err
}

// finalizeGroups is the shared final-round machinery behind Session.Finalize
// and Engine.QueryByExamples.
func finalizeGroups(ctx context.Context, eng *Engine, relevant []rstar.ItemID, assign map[rstar.ItemID]*rstar.Node, k int, weights vec.Vector, finalIO disk.Accounter, stats *Stats, trace *obs.Trace) (*Result, error) {
	o := eng.cfg.Observer
	var t0 time.Time
	var offsetNS int64
	var readsBefore uint64
	expBefore := stats.Expansions
	if o != nil {
		offsetNS = trace.SinceStart()
		t0 = time.Now()
		readsBefore = finalIO.Reads()
	}
	// Group the query panel by assigned subcluster: "a localized multipoint
	// query is computed for each subset of relevant images belonging to a
	// given subcluster" (§3.3).
	type local struct {
		node *rstar.Node
		ids  []rstar.ItemID
	}
	byNode := make(map[disk.PageID]*local)
	var order []disk.PageID // deterministic group processing order
	for _, id := range relevant {
		n := assign[id]
		if n == nil {
			continue
		}
		l, ok := byNode[n.ID()]
		if !ok {
			l = &local{node: n}
			byNode[n.ID()] = l
			order = append(order, n.ID())
		}
		l.ids = append(l.ids, id)
	}
	if len(byNode) == 0 {
		return nil, errors.New("core: no relevant image lies under the current frontier")
	}

	sort.Slice(order, func(i, j int) bool {
		a, b := byNode[order[i]], byNode[order[j]]
		if len(a.ids) != len(b.ids) {
			return len(a.ids) > len(b.ids)
		}
		return order[i] < order[j]
	})
	// More subqueries than result slots: keep only the k most relevant.
	if len(order) > k {
		order = order[:k]
	}

	// Resolve each subquery's search area first (§3.3 boundary test: expand
	// while any local query image sits near its node's boundary), since the
	// search area caps how many images the subquery can supply.
	type prepared struct {
		l        *local
		search   *rstar.Node
		centroid vec.Vector
		cap      int
	}
	preps := make(map[disk.PageID]*prepared, len(order))
	for _, nodeID := range order {
		l := byNode[nodeID]
		qpts := make([]vec.Vector, len(l.ids))
		for i, id := range l.ids {
			qpts[i] = eng.rfs.Point(id)
		}
		search := eng.rfs.ExpandForQuery(l.node, qpts, eng.cfg.BoundaryThreshold)
		if search != l.node {
			stats.Expansions++
		}
		preps[nodeID] = &prepared{
			l:        l,
			search:   search,
			centroid: vec.Centroid(qpts),
			cap:      eng.rfs.SubtreeSize(search),
		}
	}

	// Allocate k across subqueries proportionally to their relevant counts
	// (§3.4), each capped by its searchable subtree, with leftovers
	// round-robined to groups that still have capacity.
	counts := make([]int, len(order))
	caps := make([]int, len(order))
	for i, nodeID := range order {
		counts[i] = len(byNode[nodeID].ids)
		caps[i] = preps[nodeID].cap
	}
	allocs := ProportionalAlloc(k, counts, caps)
	alloc := make(map[disk.PageID]int, len(order))
	for i, nodeID := range order {
		alloc[nodeID] = allocs[i]
	}

	// Run the localized subqueries on the engine's worker pool. Each subquery
	// requests alloc+k neighbours — enough to fill its allocation even if
	// every image claimed by an earlier group (at most k in total) overlaps
	// its expanded search area — and records its node accesses in a private
	// trace. Because a larger k-NN request returns a prefix-consistent
	// superset, the request size is independent of the other groups and the
	// subqueries can run concurrently; the traces are then replayed into the
	// session cache in group order, so results AND simulated I/O counts are
	// identical at every Parallelism setting.
	neighborLists := make([][]rstar.Neighbor, len(order))
	recorders := make([]*disk.Recorder, len(order))
	var sqStats []rstar.SearchStats
	var sqDur, sqOff []int64
	if o != nil {
		sqStats = make([]rstar.SearchStats, len(order))
		for i := range sqStats {
			sqStats[i].Timed = true // per-phase scan/rerank wall time for the spans
		}
		sqDur = make([]int64, len(order))
		sqOff = make([]int64, len(order))
	}
	subqueryBody := func(i int) error {
		p := preps[order[i]]
		rec := &disk.Recorder{}
		var st *rstar.SearchStats
		var start time.Time
		if o != nil {
			st = &sqStats[i]
			sqOff[i] = trace.SinceStart()
			start = time.Now()
		}
		ns, err := localKNN(ctx, eng, weights, rec, p.search, p.centroid, alloc[order[i]]+k, st)
		if err != nil {
			return err
		}
		if o != nil {
			sqDur[i] = time.Since(start).Nanoseconds()
		}
		neighborLists[i] = ns
		recorders[i] = rec
		return nil
	}
	// Coalesce subqueries whose boundary-expanded search areas resolved to the
	// SAME node: their sweeps cover identical leaves, so the engine answers
	// each such bundle with one multi-query batch search, amortizing every
	// leaf-block load across the bundle. The batch paths are bit-identical per
	// subquery to the independent calls — results, stats, and recorder traces
	// alike (rstar/batch.go) — so grouping changes throughput only. Weighted
	// queries keep the single-query path (there is no weighted multi kernel).
	var batches [][]int
	if weights == nil {
		batchOf := make(map[*rstar.Node]int, len(order))
		for i, nodeID := range order {
			search := preps[nodeID].search
			if b, ok := batchOf[search]; ok {
				batches[b] = append(batches[b], i)
				continue
			}
			batchOf[search] = len(batches)
			batches = append(batches, []int{i})
		}
	} else {
		for i := range order {
			batches = append(batches, []int{i})
		}
	}
	batchBody := func(b int) error {
		idxs := batches[b]
		if len(idxs) == 1 {
			return subqueryBody(idxs[0])
		}
		qs := make([]vec.Vector, len(idxs))
		ks := make([]int, len(idxs))
		accs := make([]disk.Accounter, len(idxs))
		var sts []*rstar.SearchStats
		if o != nil {
			sts = make([]*rstar.SearchStats, len(idxs))
		}
		for bi, i := range idxs {
			p := preps[order[i]]
			qs[bi] = p.centroid
			ks[bi] = alloc[order[i]] + k
			rec := &disk.Recorder{}
			accs[bi] = rec
			recorders[i] = rec
			if o != nil {
				sts[bi] = &sqStats[i]
				sqOff[i] = trace.SinceStart()
			}
		}
		var start time.Time
		if o != nil {
			start = time.Now()
		}
		lists, err := localKNNBatch(ctx, eng, preps[order[idxs[0]]].search, qs, ks, accs, sts)
		if err != nil {
			return err
		}
		for bi, i := range idxs {
			neighborLists[i] = lists[bi]
			if o != nil {
				sqDur[i] = time.Since(start).Nanoseconds()
			}
		}
		return nil
	}
	runSubqueries := func() error {
		return par.Do(ctx, len(batches), eng.cfg.Parallelism, batchBody)
	}
	if o != nil {
		// Tag the subquery pool so CPU profiles attribute samples to the
		// finalize fan-out. pprof.Do costs a goroutine-label swap, so it is
		// gated on the observer like every other instrumentation point.
		inner := runSubqueries
		runSubqueries = func() (err error) {
			pprof.Do(ctx, pprof.Labels("phase", "subquery"), func(context.Context) {
				err = inner()
			})
			return err
		}
	}
	if err := runSubqueries(); err != nil {
		return nil, err
	}
	var mergeStart time.Time
	var mergeOffsetNS int64
	var topupStats rstar.SearchStats
	var topupSt *rstar.SearchStats
	if o != nil {
		mergeOffsetNS = trace.SinceStart()
		mergeStart = time.Now()
		topupSt = &topupStats
	}

	// Serial merge: overlapping search areas mean an image already claimed by
	// an earlier group is skipped; a top-up pass redistributes any remaining
	// shortfall.
	res := &Result{}
	seen := make(map[rstar.ItemID]bool, k)
	groups := make(map[disk.PageID]*Group, len(order))
	for i, nodeID := range order {
		p := preps[nodeID]
		g := &Group{Node: p.l.node, SearchNode: p.search, QueryIDs: p.l.ids}
		recorders[i].Replay(finalIO)
		for _, n := range neighborLists[i] {
			if len(g.Images) >= alloc[nodeID] {
				break
			}
			if seen[n.ID] {
				continue
			}
			seen[n.ID] = true
			g.Images = append(g.Images, ScoredImage{ID: n.ID, Score: n.Dist})
			g.RankScore += n.Dist
		}
		groups[nodeID] = g
	}
	for deficit := k - len(seen); deficit > 0; {
		progressed := false
		for _, nodeID := range order {
			if deficit <= 0 {
				break
			}
			p, g := preps[nodeID], groups[nodeID]
			if len(g.Images) >= p.cap {
				continue
			}
			want := len(g.Images) + deficit + len(seen)
			more, err := localKNN(ctx, eng, weights, finalIO, p.search, p.centroid, want, topupSt)
			if err != nil {
				return nil, err
			}
			for _, n := range more {
				if deficit <= 0 {
					break
				}
				if seen[n.ID] {
					continue
				}
				seen[n.ID] = true
				g.Images = append(g.Images, ScoredImage{ID: n.ID, Score: n.Dist})
				g.RankScore += n.Dist
				deficit--
				progressed = true
			}
		}
		if !progressed {
			break // every search area exhausted; fewer than k images exist
		}
	}
	for _, nodeID := range order {
		res.Groups = append(res.Groups, *groups[nodeID])
	}
	// §3.4: groups presented in ranking-score order (ascending summed
	// distance: a group whose members lie closer to its query ranks first).
	sort.SliceStable(res.Groups, func(i, j int) bool { return res.Groups[i].RankScore < res.Groups[j].RankScore })
	if o != nil {
		span := obs.FinalizeSpan{
			K:               k,
			OffsetNS:        offsetNS,
			Subqueries:      len(order),
			Expansions:      stats.Expansions - expBefore,
			PageReads:       finalIO.Reads() - readsBefore,
			HeapPops:        topupStats.HeapPops,
			RerankFallbacks: topupStats.RerankFallbacks,
			MergeOffsetNS:   mergeOffsetNS,
			MergeNS:         time.Since(mergeStart).Nanoseconds(),
			DurationNS:      time.Since(t0).Nanoseconds(),
		}
		for i, nodeID := range order {
			p := preps[nodeID]
			span.HeapPops += sqStats[i].HeapPops
			span.RerankFallbacks += sqStats[i].RerankFallbacks
			span.Subspans = append(span.Subspans, obs.SubquerySpan{
				Node:            uint64(nodeID),
				OffsetNS:        sqOff[i],
				QueryImages:     len(p.l.ids),
				Allocated:       alloc[nodeID],
				Expanded:        p.search != p.l.node,
				HeapPops:        sqStats[i].HeapPops,
				NodesRead:       sqStats[i].NodesRead,
				PageAccesses:    uint64(len(recorders[i].Trace())),
				Quantized:       sqStats[i].CodesScanned > 0,
				ScanNS:          sqStats[i].ScanNS,
				RerankNS:        sqStats[i].RerankNS,
				RerankFallbacks: sqStats[i].RerankFallbacks,
				DurationNS:      sqDur[i],
			})
		}
		o.FinalizeDone(trace, span)
	}
	return res, nil
}

// localKNN runs one localized subquery search, honouring an optional
// feature-importance weighting. st, when non-nil, accumulates the search's
// effort counters.
func localKNN(ctx context.Context, eng *Engine, weights vec.Vector, acc disk.Accounter, n *rstar.Node, q vec.Vector, k int, st *rstar.SearchStats) ([]rstar.Neighbor, error) {
	if weights != nil {
		return eng.rfs.Tree().KNNWeightedFromStatsCtx(ctx, n, q, weights, k, acc, st)
	}
	if eng.cfg.Float32 {
		return eng.rfs.Tree().KNNF32FromStatsCtx(ctx, n, q, k, acc, st)
	}
	if eng.cfg.Quantized {
		return eng.rfs.Tree().KNNQuantFromStatsCtx(ctx, n, q, k, eng.cfg.RerankFactor, acc, st)
	}
	return eng.rfs.Tree().KNNFromStatsCtx(ctx, n, q, k, acc, st)
}

// localKNNBatch answers several coalesced subqueries over the same search node
// with one multi-query batch search in the configured scan mode. Per query it
// is bit-identical to localKNN; weighted queries never reach here.
func localKNNBatch(ctx context.Context, eng *Engine, n *rstar.Node, qs []vec.Vector, ks []int, accs []disk.Accounter, sts []*rstar.SearchStats) ([][]rstar.Neighbor, error) {
	if eng.cfg.Float32 {
		return eng.rfs.Tree().KNNF32BatchFromStatsCtx(ctx, n, qs, ks, accs, sts)
	}
	if eng.cfg.Quantized {
		return eng.rfs.Tree().KNNQuantBatchFromStatsCtx(ctx, n, qs, ks, eng.cfg.RerankFactor, accs, sts)
	}
	return eng.rfs.Tree().KNNBatchFromStatsCtx(ctx, n, qs, ks, accs, sts)
}
