// Package store provides the FeatureStore: an immutable, contiguous
// column-store for a corpus's feature vectors. All vectors of one
// representation (the main 37-d features, or one MV colour channel) live in a
// single dimension-strided []float64 backing array in image-ID order, and
// every vec.Vector the store hands out is a zero-copy view into that array.
//
// The layout buys the retrieval hot loops three things: sequential scans walk
// one cache-friendly allocation instead of pointer-chasing per-vector heap
// objects; batch kernels (vec.SquaredDistsTo and friends) score whole row
// ranges per call; and persistence serializes the backing array directly
// instead of gob-encoding n separate slices.
//
// Aliasing rules: the store owns its backing array and never mutates it after
// construction. Views returned by At/Views share that memory — callers must
// treat them as read-only and must Clone before mutating. Code that needs a
// growable vector set (rfs dynamic inserts) starts from Views() and appends
// owned clones beyond the store's rows.
package store

import (
	"fmt"

	"qdcbir/internal/vec"
)

// FeatureStore owns n dimension-strided feature vectors in one contiguous
// backing array. The zero value is an empty store; construct with
// FromVectors, FromBacking, or FromBacking32. A FeatureStore is immutable
// after construction (MaterializeFloat32, the one lazy step, must run before
// concurrent use) and safe for unsynchronized concurrent reads.
//
// Precision: data is always populated — it is the ground truth of a Float64
// store and the exact widening of a Float32 store's data32 — so every float64
// consumer (tree build, batch kernels, golden paths) works identically on
// either tag. data32 is the native backing of a Float32 store and a cached
// narrowing for a Float64 store that has been materialized for the float32
// scan path.
type FeatureStore struct {
	dim    int
	n      int
	prec   Precision
	data   []float64
	data32 []float32
}

// FromVectors copies the given vectors into a new store. All vectors must
// share one dimension; index i in vs becomes row (image ID) i.
func FromVectors(vs []vec.Vector) *FeatureStore {
	if len(vs) == 0 {
		return &FeatureStore{}
	}
	dim := len(vs[0])
	data := make([]float64, len(vs)*dim)
	for i, v := range vs {
		if len(v) != dim {
			panic(fmt.Sprintf("store: vector %d has dim %d, want %d", i, len(v), dim))
		}
		copy(data[i*dim:(i+1)*dim], v)
	}
	return &FeatureStore{dim: dim, n: len(vs), data: data}
}

// FromBacking adopts an existing dimension-strided backing array without
// copying; the caller must not retain or mutate data afterwards. len(data)
// must be a multiple of dim. Persistence uses this to reconstruct stores
// straight from decoded archives.
func FromBacking(dim int, data []float64) (*FeatureStore, error) {
	if dim <= 0 {
		if len(data) != 0 {
			return nil, fmt.Errorf("store: dim %d with %d values", dim, len(data))
		}
		return &FeatureStore{}, nil
	}
	if len(data)%dim != 0 {
		return nil, fmt.Errorf("store: backing length %d not a multiple of dim %d", len(data), dim)
	}
	return &FeatureStore{dim: dim, n: len(data) / dim, data: data}, nil
}

// FromBacking32 adopts a float32-native dimension-strided backing array (an
// imported embedding corpus) without copying it; the caller must not retain
// or mutate data afterwards. The float64 shadow backing is widened here once
// — an exact conversion — so every float64 consumer sees the same values.
// len(data) must be a multiple of dim.
func FromBacking32(dim int, data []float32) (*FeatureStore, error) {
	if dim <= 0 {
		if len(data) != 0 {
			return nil, fmt.Errorf("store: dim %d with %d values", dim, len(data))
		}
		return &FeatureStore{prec: Float32}, nil
	}
	if len(data)%dim != 0 {
		return nil, fmt.Errorf("store: backing length %d not a multiple of dim %d", len(data), dim)
	}
	return &FeatureStore{
		dim:    dim,
		n:      len(data) / dim,
		prec:   Float32,
		data:   vec.Widen64(data, nil),
		data32: data,
	}, nil
}

// Precision returns the store's native precision tag.
func (s *FeatureStore) Precision() Precision { return s.prec }

// Len returns the number of vectors stored.
func (s *FeatureStore) Len() int { return s.n }

// Dim returns the vector dimensionality (0 for an empty store).
func (s *FeatureStore) Dim() int { return s.dim }

// At returns a zero-copy read-only view of row id. The three-index slice
// caps the view at the row boundary, so even an append by a misbehaving
// caller cannot bleed into the next row.
func (s *FeatureStore) At(id int) vec.Vector {
	base := id * s.dim
	return vec.Vector(s.data[base : base+s.dim : base+s.dim])
}

// Views returns all rows as zero-copy views, indexed by image ID. The slice
// of headers is freshly allocated (callers may append owned vectors to it);
// the underlying float data is shared with the store.
func (s *FeatureStore) Views() []vec.Vector {
	out := make([]vec.Vector, s.n)
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// Block returns the contiguous backing of rows [lo, hi) — hi-lo rows of Dim
// components — suitable for vec.SquaredDistsTo.
func (s *FeatureStore) Block(lo, hi int) []float64 {
	return s.data[lo*s.dim : hi*s.dim : hi*s.dim]
}

// Backing returns the store's whole backing array. It is shared, not copied:
// callers must treat it as read-only. Persistence serializes this directly.
func (s *FeatureStore) Backing() []float64 { return s.data }

// SquaredDistsTo scores rows [lo, hi) against q into out (which must have
// hi-lo entries), preserving the scalar accumulation order exactly.
func (s *FeatureStore) SquaredDistsTo(q vec.Vector, lo, hi int, out []float64) {
	vec.SquaredDistsTo(q, s.Block(lo, hi), out)
}

// MaterializeFloat32 ensures the store has a float32 backing and returns it:
// a Float32 store's native array, or a narrowing of a Float64 store's data
// built (and cached) on first call. Narrowing rounds each component once —
// the single corpus-side conversion of the float32 scan path. NOT
// goroutine-safe on the first call; systems materialize during assembly,
// before queries run.
func (s *FeatureStore) MaterializeFloat32() []float32 {
	if s.data32 == nil && len(s.data) > 0 {
		s.data32 = vec.Narrow32(s.data, nil)
	}
	return s.data32
}

// Backing32 returns the store's float32 backing array, or nil if it has not
// been materialized. It is shared, not copied: callers must treat it as
// read-only.
func (s *FeatureStore) Backing32() []float32 { return s.data32 }

// At32 returns a capped zero-copy view of row id in the float32 backing. The
// backing must have been materialized.
func (s *FeatureStore) At32(id int) []float32 {
	base := id * s.dim
	return s.data32[base : base+s.dim : base+s.dim]
}

// Block32 returns the contiguous float32 backing of rows [lo, hi), suitable
// for vec.SquaredDistsTo32. The backing must have been materialized.
func (s *FeatureStore) Block32(lo, hi int) []float32 {
	return s.data32[lo*s.dim : hi*s.dim : hi*s.dim]
}
