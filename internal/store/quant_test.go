package store

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

func randStore(rng *rand.Rand, n, dim int, scale float64) *FeatureStore {
	vs := make([]vec.Vector, n)
	for i := range vs {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * scale
		}
		vs[i] = v
	}
	return FromVectors(vs)
}

func decodeRow(q *Quantized, row int) vec.Vector {
	mins, _ := q.Bounds()
	codes := q.Row(row)
	out := make(vec.Vector, q.Dim())
	for i := range out {
		out[i] = mins[i] + float64(codes[i])*q.Delta()
	}
	return out
}

// TestQuantizeRoundTripBounds: on a clean corpus every stored value must
// decode back within delta/2 per component, and every row within DBErr.
func TestQuantizeRoundTripBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := randStore(rng, 200, 9, 12)
	q, err := Quantize(st)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	if !q.Clean() {
		t.Fatal("finite corpus reported unclean")
	}
	if q.Len() != 200 || q.Dim() != 9 {
		t.Fatalf("shape %dx%d, want 200x9", q.Len(), q.Dim())
	}
	half := q.Delta()/2 + 1e-12
	for r := 0; r < q.Len(); r++ {
		dec := decodeRow(q, r)
		var sq float64
		for i, v := range st.At(r) {
			d := math.Abs(v - dec[i])
			if d > half {
				t.Fatalf("row %d dim %d: decode error %g > delta/2 %g", r, i, d, half)
			}
			sq += (v - dec[i]) * (v - dec[i])
		}
		if math.Sqrt(sq) > q.DBErr()*(1+1e-12) {
			t.Fatalf("row %d: decode error %g exceeds DBErr %g", r, math.Sqrt(sq), q.DBErr())
		}
	}
}

// TestQuantizeSymmetricDistance: the design invariant the kernels rely on —
// the decoded squared distance between two rows equals delta² times the
// integer code distance, because per-dimension offsets cancel.
func TestQuantizeSymmetricDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := randStore(rng, 50, 7, 3)
	q, _ := Quantize(st)
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Intn(q.Len()), rng.Intn(q.Len())
		raw := vec.Uint8SquaredDist(q.Row(a), q.Row(b))
		got := q.DecodedDist(raw)
		want := math.Sqrt(vec.SqL2(decodeRow(q, a), decodeRow(q, b)))
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("rows %d,%d: DecodedDist %g, float decode distance %g", a, b, got, want)
		}
	}
}

// TestQuantizeNonFinite: NaN and ±Inf training values must mark the corpus
// unclean with an infinite DBErr (forcing exact fallback) without breaking
// encoding of the finite values.
func TestQuantizeNonFinite(t *testing.T) {
	vs := []vec.Vector{
		{1, math.NaN(), 3},
		{math.Inf(1), 2, 3},
		{0, 2, math.Inf(-1)},
		{4, 5, 6},
	}
	q, err := Quantize(FromVectors(vs))
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	if q.Clean() {
		t.Fatal("non-finite corpus reported clean")
	}
	if !math.IsInf(q.DBErr(), 1) {
		t.Fatalf("DBErr %g on unclean corpus, want +Inf", q.DBErr())
	}
	mins, maxs := q.Bounds()
	for i := range mins {
		if math.IsNaN(mins[i]) || math.IsInf(mins[i], 0) || math.IsNaN(maxs[i]) || math.IsInf(maxs[i], 0) {
			t.Fatalf("dim %d: non-finite bounds [%g, %g]", i, mins[i], maxs[i])
		}
	}
}

// TestQuantizeConstantCorpus: identical rows give delta == 0 and exact
// (zero-error) decoding.
func TestQuantizeConstantCorpus(t *testing.T) {
	vs := []vec.Vector{{3, -1, 7}, {3, -1, 7}, {3, -1, 7}}
	q, err := Quantize(FromVectors(vs))
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	if q.Delta() != 0 {
		t.Fatalf("delta %g on constant corpus", q.Delta())
	}
	if q.DBErr() != 0 {
		t.Fatalf("DBErr %g on constant corpus", q.DBErr())
	}
	for r := 0; r < q.Len(); r++ {
		if !decodeRow(q, r).Equal(vs[r]) {
			t.Fatalf("row %d: constant corpus decode diverges", r)
		}
	}
	codes, qErr := q.EncodeQuery(vec.Vector{3, -1, 7}, nil)
	if qErr != 0 {
		t.Fatalf("query on constant corpus decodes with error %g", qErr)
	}
	for _, c := range codes {
		if c != 0 {
			t.Fatal("constant corpus query encodes to non-zero code")
		}
	}
}

// TestEncodeQueryError: the returned error must be the exact decode error,
// including for out-of-range queries (clamping inflates it), and NaN queries
// must yield a NaN error.
func TestEncodeQueryError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := randStore(rng, 100, 5, 2)
	q, _ := Quantize(st)
	for trial := 0; trial < 50; trial++ {
		v := make(vec.Vector, 5)
		for j := range v {
			v[j] = rng.NormFloat64() * 20 // mostly outside the training range
		}
		codes, qErr := q.EncodeQuery(v, nil)
		mins, _ := q.Bounds()
		var sq float64
		for i := range v {
			d := v[i] - (mins[i] + float64(codes[i])*q.Delta())
			sq += d * d
		}
		if math.Abs(qErr-math.Sqrt(sq)) > 1e-12*(1+qErr) {
			t.Fatalf("EncodeQuery error %g, recomputed %g", qErr, math.Sqrt(sq))
		}
	}
	if _, qErr := q.EncodeQuery(vec.Vector{1, math.NaN(), 1, 1, 1}, nil); !math.IsNaN(qErr) {
		t.Fatalf("NaN query error %g, want NaN", qErr)
	}
}

// TestQuantPartsRoundTrip: Parts must reconstruct an equivalent quantizer,
// and FromQuantParts must reject corrupt shapes.
func TestQuantPartsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	st := randStore(rng, 64, 6, 1)
	q, _ := Quantize(st)
	p := q.Parts()
	r, err := FromParts(p)
	if err != nil {
		t.Fatalf("from parts: %v", err)
	}
	if r.Delta() != q.Delta() || r.DBErr() != q.DBErr() || r.Clean() != q.Clean() {
		t.Fatal("reconstructed parameters diverge")
	}
	for i := range q.Codes() {
		if q.Codes()[i] != r.Codes()[i] {
			t.Fatalf("code %d diverges", i)
		}
	}

	bad := []QuantParts{
		{Dim: -1, Codes: []uint8{1}},
		{Dim: 3, Codes: make([]uint8, 7), Mins: make([]float64, 3), Maxs: make([]float64, 3)},
		{Dim: 3, Codes: make([]uint8, 6), Mins: make([]float64, 2), Maxs: make([]float64, 3)},
		{Dim: 2, Codes: make([]uint8, 4), Mins: []float64{1, 0}, Maxs: []float64{0, 1}},
		{Dim: 2, Codes: make([]uint8, 4), Mins: []float64{math.NaN(), 0}, Maxs: []float64{1, 1}},
		{Dim: maxSQ8Dim + 1},
	}
	for i, p := range bad {
		if _, err := FromParts(p); err == nil {
			t.Errorf("corrupt parts %d accepted", i)
		}
	}
}

// TestQuantizeBytes: the codes table must be exactly one byte per component —
// the 8x reduction the memory benchmarks report.
func TestQuantizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := randStore(rng, 128, 37, 1)
	q, _ := Quantize(st)
	if q.Bytes() != 128*37 {
		t.Fatalf("codes table %d bytes, want %d", q.Bytes(), 128*37)
	}
	if ratio := float64(len(st.Backing())*8) / float64(q.Bytes()); ratio != 8 {
		t.Fatalf("memory ratio %g, want 8", ratio)
	}
}

// TestQuantizeShapeErrors: invalid shapes must be rejected at construction.
func TestQuantizeShapeErrors(t *testing.T) {
	if _, err := QuantizeBacking(3, make([]float64, 7)); err == nil {
		t.Error("ragged backing accepted")
	}
	if _, err := QuantizeBacking(maxSQ8Dim+1, nil); err == nil {
		t.Error("over-limit dimensionality accepted")
	}
	if _, err := QuantizeBacking(0, make([]float64, 3)); err == nil {
		t.Error("zero dim with data accepted")
	}
	if q, err := QuantizeBacking(4, nil); err != nil || q.Len() != 0 {
		t.Errorf("empty corpus: %v, len %d", err, q.Len())
	}
}

// FuzzSQ8EncodeDecode fuzzes the encode/decode bounds: arbitrary float64
// training data (NaN, ±Inf, denormals, constant dimensions) must never
// panic, must produce in-range codes, and — when the corpus is clean — must
// honour the delta/2 per-component decode bound that the rerank guarantee
// rests on.
func FuzzSQ8EncodeDecode(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), false)
	f.Add(int64(2), uint8(1), uint8(1), true)
	f.Add(int64(3), uint8(7), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed int64, nRows, dim uint8, injectNonFinite bool) {
		n, d := int(nRows%32)+1, int(dim%16)+1
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, n*d)
		for i := range data {
			switch rng.Intn(12) {
			case 0:
				data[i] = 0
			case 1:
				data[i] = rng.NormFloat64() * 1e12
			case 2:
				data[i] = rng.NormFloat64() * 1e-12
			default:
				data[i] = rng.NormFloat64()
			}
		}
		if injectNonFinite {
			for i := 0; i < 3; i++ {
				switch j := rng.Intn(len(data)); rng.Intn(3) {
				case 0:
					data[j] = math.NaN()
				case 1:
					data[j] = math.Inf(1)
				default:
					data[j] = math.Inf(-1)
				}
			}
		}
		q, err := QuantizeBacking(d, data)
		if err != nil {
			t.Fatalf("quantize: %v", err)
		}
		if q.Len() != n {
			t.Fatalf("len %d, want %d", q.Len(), n)
		}
		clean := true
		for _, v := range data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				clean = false
				break
			}
		}
		if q.Clean() != clean {
			t.Fatalf("clean %v, data clean %v", q.Clean(), clean)
		}
		if !clean && !math.IsInf(q.DBErr(), 1) {
			t.Fatalf("unclean corpus DBErr %g, want +Inf", q.DBErr())
		}
		mins, _ := q.Bounds()
		for r := 0; r < n; r++ {
			codes := q.Row(r)
			for i, v := range data[r*d : (r+1)*d] {
				if !clean {
					continue
				}
				dec := mins[i] + float64(codes[i])*q.Delta()
				if err := math.Abs(v - dec); err > q.Delta()/2*(1+1e-9)+1e-300 {
					t.Fatalf("row %d dim %d: value %g decodes to %g (err %g > delta/2 %g)",
						r, i, v, dec, err, q.Delta()/2)
				}
			}
		}
		// Query encoding must be total for arbitrary vectors too.
		v := make(vec.Vector, d)
		for i := range v {
			v[i] = rng.NormFloat64() * 1e6
		}
		if _, qErr := q.EncodeQuery(v, nil); clean && (math.IsNaN(qErr) || qErr < 0) {
			t.Fatalf("finite query on clean corpus has error %g", qErr)
		}
	})
}
