package store

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

func randBacking32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// TestFromBacking32RoundTrip: a float32-native store must expose the exact
// values through both backings — the float64 view widened exactly, and the
// float32 view aliasing the adopted array bit-for-bit.
func TestFromBacking32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const dim, n = 7, 31
	data := randBacking32(rng, dim*n)
	st, err := FromBacking32(dim, data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Precision() != Float32 {
		t.Fatalf("precision %v, want Float32", st.Precision())
	}
	if st.Len() != n || st.Dim() != dim {
		t.Fatalf("shape %dx%d, want %dx%d", st.Len(), st.Dim(), n, dim)
	}
	for id := 0; id < n; id++ {
		row64 := st.At(id)
		row32 := st.At32(id)
		for i := 0; i < dim; i++ {
			want := data[id*dim+i]
			if math.Float32bits(row32[i]) != math.Float32bits(want) {
				t.Fatalf("row %d[%d]: f32 backing %v != source %v", id, i, row32[i], want)
			}
			if row64[i] != float64(want) {
				t.Fatalf("row %d[%d]: widened %v != %v", id, i, row64[i], float64(want))
			}
		}
	}
	// Narrowing the widened backing restores the original bits.
	back := vec.Narrow32(st.Backing(), nil)
	for i := range data {
		if math.Float32bits(back[i]) != math.Float32bits(data[i]) {
			t.Fatalf("narrow(widen) changed bits at %d", i)
		}
	}
}

// TestFromBacking32Validation mirrors FromBacking's shape checks.
func TestFromBacking32Validation(t *testing.T) {
	if _, err := FromBacking32(3, make([]float32, 7)); err == nil {
		t.Fatal("accepted backing not a multiple of dim")
	}
	if _, err := FromBacking32(0, make([]float32, 2)); err == nil {
		t.Fatal("accepted dim 0 with values")
	}
	st, err := FromBacking32(0, nil)
	if err != nil || st.Len() != 0 {
		t.Fatalf("empty store: %v len %d", err, st.Len())
	}
	if st.Precision() != Float32 {
		t.Fatalf("empty f32 store precision %v", st.Precision())
	}
}

// TestMaterializeFloat32: a Float64 store narrows on demand (cached), while a
// Float32 store returns its native array without copying.
func TestMaterializeFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const dim, n = 5, 11
	data64 := make([]float64, dim*n)
	for i := range data64 {
		data64[i] = rng.NormFloat64()
	}
	st64, err := FromBacking(dim, data64)
	if err != nil {
		t.Fatal(err)
	}
	if st64.Backing32() != nil {
		t.Fatal("f64 store has an f32 backing before materialization")
	}
	f32 := st64.MaterializeFloat32()
	for i, v := range data64 {
		if f32[i] != float32(v) {
			t.Fatalf("narrowed[%d] %v != float32(%v)", i, f32[i], v)
		}
	}
	if again := st64.MaterializeFloat32(); &again[0] != &f32[0] {
		t.Fatal("materialization not cached")
	}

	data32 := randBacking32(rng, dim*n)
	st32, err := FromBacking32(dim, data32)
	if err != nil {
		t.Fatal(err)
	}
	if got := st32.MaterializeFloat32(); &got[0] != &data32[0] {
		t.Fatal("f32 store materialization copied its native backing")
	}
	if b := st32.Block32(2, 5); len(b) != 3*dim || &b[0] != &data32[2*dim] {
		t.Fatal("Block32 does not alias the native backing")
	}
}

// TestQuantizeBacking32MatchesWidened: SQ8 training from float32 data must be
// bit-identical to training from its exact float64 widening (the "training
// from either" contract), and Quantize over an f32-primary store must match
// both.
func TestQuantizeBacking32MatchesWidened(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const dim, n = 9, 64
	data := randBacking32(rng, dim*n)
	qz32, err := QuantizeBacking32(dim, data)
	if err != nil {
		t.Fatal(err)
	}
	qz64, err := QuantizeBacking(dim, vec.Widen64(data, nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromBacking32(dim, data)
	if err != nil {
		t.Fatal(err)
	}
	qzStore, err := Quantize(st)
	if err != nil {
		t.Fatal(err)
	}
	for name, qz := range map[string]*Quantized{"widened": qz64, "store": qzStore} {
		if qz.Delta() != qz32.Delta() {
			t.Fatalf("%s: delta %v != %v", name, qz.Delta(), qz32.Delta())
		}
		a, b := qz.Codes(), qz32.Codes()
		if len(a) != len(b) {
			t.Fatalf("%s: code lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: codes differ at %d: %d != %d", name, i, a[i], b[i])
			}
		}
	}
}

// TestQuantizeBacking32Unclean: non-finite float32 components must set the
// clean flag false, exactly like the float64 path.
func TestQuantizeBacking32Unclean(t *testing.T) {
	data := []float32{1, 2, float32(math.NaN()), 4, 5, 6}
	qz, err := QuantizeBacking32(3, data)
	if err != nil {
		t.Fatal(err)
	}
	if qz.Clean() {
		t.Fatal("NaN corpus reported clean")
	}
	if !math.IsInf(qz.DBErr(), 1) {
		t.Fatalf("unclean DBErr %v, want +Inf", qz.DBErr())
	}
}
