package store

import "fmt"

// Precision tags the native component width of a FeatureStore — the width the
// corpus data arrived in and the one persistence round-trips losslessly.
// Float64 is the historical default (the synthetic extractor, archives v0–v2);
// Float32 marks imported embedding corpora (e.g. raw .fvecs files) or corpora
// explicitly narrowed for the float32 scan path.
//
// Regardless of tag, every store keeps a float64 backing: widening float32 to
// float64 is exact, so the tree geometry, representative selection, and the
// default float64 query path operate identically on either tag, and the
// float64 golden results never depend on a store's precision. The tag decides
// what persistence writes (archive v3 stores an f32-primary corpus as raw
// float32, halving the archive) and lets callers reach the native float32
// rows without a lossy round-trip.
type Precision uint8

const (
	// Float64 is the default precision: data is float64-native.
	Float64 Precision = iota
	// Float32 marks a float32-native store: the float32 backing is the
	// ground truth and the float64 backing is its exact widening.
	Float32
)

// String returns the precision's flag/CLI spelling ("f64" or "f32").
func (p Precision) String() string {
	switch p {
	case Float64:
		return "f64"
	case Float32:
		return "f32"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision parses the spellings String produces (plus the long forms
// "float64"/"float32").
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "":
		return Float64, nil
	case "f32", "float32":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("store: unknown precision %q (want f64 or f32)", s)
	}
}
