package store

import (
	"fmt"
	"math"

	"qdcbir/internal/vec"
)

// This file adds the SQ8 scalar-quantized representation beside the float
// FeatureStore: every vector component compresses to one uint8 code, an 8x
// memory reduction, scanned with the int32 kernels in internal/vec.
//
// Design. Per-dimension minima and maxima are trained over the store at
// build time, but all dimensions share ONE step size
//
//	delta = max_i(maxs[i] - mins[i]) / 255
//
// so that the per-dimension offsets cancel in a symmetric distance: with
// decode(c)[i] = mins[i] + c[i]*delta,
//
//	||decode(a) - decode(b)||² = delta² * Σ_i (a[i]-b[i])²
//
// — an int32 accumulation and a single float multiply at the end. A per-
// dimension delta would need per-term float scaling and forfeit the integer
// hot loop.
//
// Exactness bookkeeping. Encoding a stored (training-range, finite) value
// rounds to the nearest code, so |v - decode(code)| <= delta/2 per dimension
// and every stored point p satisfies
//
//	||p - decode(codes(p))|| <= (delta/2)*sqrt(dim)  =: DBErr
//
// A query is encoded at search time and its exact decode error
// ||q - decode(codes(q))|| is measured directly (EncodeQuery). The triangle
// inequality then bounds how far a code distance can sit from the true
// distance, which is what lets the two-phase k-NN prove its candidate set
// already contains the exact top-k (see rstar.KNNQuantFromStatsCtx). Corpora
// containing NaN or ±Inf components set clean=false and DBErr=+Inf: every
// search over them falls back to the exact path rather than trust the bound.

// maxSQ8Dim bounds the dimensionality so a full code distance fits int32:
// dim * 255² <= MaxInt32.
const maxSQ8Dim = math.MaxInt32 / (255 * 255)

// Quantized is the SQ8 companion of a FeatureStore: n dimension-strided
// uint8 code vectors in one contiguous backing array, in the same row order
// as the float store it was trained on. Immutable after construction and
// safe for unsynchronized concurrent reads.
type Quantized struct {
	dim   int
	n     int
	codes []uint8
	mins  []float64 // per-dimension training minimum
	maxs  []float64 // per-dimension training maximum
	delta float64   // shared code step (0 for a constant corpus)
	clean bool      // every training value was finite
	dbErr float64   // (delta/2)*sqrt(dim) when clean, +Inf otherwise
}

// Quantize trains an SQ8 quantizer on the store and encodes every row. It
// works for either store precision: a Float32 store trains over its exact
// float64 widening, so the trained ranges and codes are identical to training
// on the native float32 values.
func Quantize(s *FeatureStore) (*Quantized, error) {
	return QuantizeBacking(s.dim, s.data)
}

// QuantizeBacking32 trains on and encodes a float32 dimension-strided backing
// array. Each value widens exactly to float64 before training, so the result
// is bit-identical to QuantizeBacking over the widened array; the data is
// read, never retained.
func QuantizeBacking32(dim int, data []float32) (*Quantized, error) {
	return QuantizeBacking(dim, vec.Widen64(data, nil))
}

// QuantizeBacking trains on and encodes a dimension-strided backing array
// (len(data) must be a multiple of dim). The data is read, never retained.
func QuantizeBacking(dim int, data []float64) (*Quantized, error) {
	if dim <= 0 {
		if len(data) != 0 {
			return nil, fmt.Errorf("store: quantize dim %d with %d values", dim, len(data))
		}
		return &Quantized{clean: true}, nil
	}
	if dim > maxSQ8Dim {
		return nil, fmt.Errorf("store: quantize dim %d exceeds SQ8 limit %d", dim, maxSQ8Dim)
	}
	if len(data)%dim != 0 {
		return nil, fmt.Errorf("store: quantize backing length %d not a multiple of dim %d", len(data), dim)
	}
	n := len(data) / dim
	q := &Quantized{
		dim:   dim,
		n:     n,
		codes: make([]uint8, len(data)),
		mins:  make([]float64, dim),
		maxs:  make([]float64, dim),
		clean: true,
	}
	for i := range q.mins {
		q.mins[i] = math.Inf(1)
		q.maxs[i] = math.Inf(-1)
	}
	for r := 0; r < n; r++ {
		row := data[r*dim : (r+1)*dim]
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				q.clean = false
				continue
			}
			if v < q.mins[i] {
				q.mins[i] = v
			}
			if v > q.maxs[i] {
				q.maxs[i] = v
			}
		}
	}
	q.finishTraining()
	for r := 0; r < n; r++ {
		q.encode(data[r*dim:(r+1)*dim], q.codes[r*dim:(r+1)*dim])
	}
	return q, nil
}

// finishTraining derives delta and the DB-side error bound from the trained
// ranges, normalizing dimensions that never saw a finite value (empty or
// fully non-finite corpora) to a [0,0] range.
func (q *Quantized) finishTraining() {
	var span float64
	for i := range q.mins {
		if q.mins[i] > q.maxs[i] { // no finite value seen
			q.mins[i], q.maxs[i] = 0, 0
		}
		if w := q.maxs[i] - q.mins[i]; w > span {
			span = w
		}
	}
	q.delta = span / 255
	if q.clean {
		q.dbErr = q.delta / 2 * math.Sqrt(float64(q.dim))
	} else {
		q.dbErr = math.Inf(1)
	}
}

// encode writes the codes of one vector: nearest-code rounding, clamped to
// [0, 255]. NaN components encode to 0 (their decode error is unbounded,
// which the clean flag already accounts for); ±Inf clamp to the range ends.
func (q *Quantized) encode(v []float64, dst []uint8) {
	for i, x := range v {
		if q.delta == 0 {
			dst[i] = 0
			continue
		}
		c := (x - q.mins[i]) / q.delta
		switch {
		case math.IsNaN(c):
			dst[i] = 0
		case c <= 0:
			dst[i] = 0
		case c >= 255:
			dst[i] = 255
		default:
			dst[i] = uint8(c + 0.5)
		}
	}
}

// Len returns the number of code vectors stored.
func (q *Quantized) Len() int { return q.n }

// Dim returns the code dimensionality.
func (q *Quantized) Dim() int { return q.dim }

// Clean reports whether every training value was finite — the precondition
// for DBErr (and so for the rerank exactness guarantee) to hold.
func (q *Quantized) Clean() bool { return q.clean }

// Delta returns the shared code step size.
func (q *Quantized) Delta() float64 { return q.delta }

// DBErr returns the per-point decode error bound (delta/2)*sqrt(dim), or
// +Inf for an unclean corpus.
func (q *Quantized) DBErr() float64 { return q.dbErr }

// Bounds returns the trained per-dimension minima and maxima (shared slices;
// read-only).
func (q *Quantized) Bounds() (mins, maxs []float64) { return q.mins, q.maxs }

// Codes returns the whole code backing array, shared and read-only.
// Persistence serializes this directly.
func (q *Quantized) Codes() []uint8 { return q.codes }

// Row returns the code vector of row id as a capped zero-copy view.
func (q *Quantized) Row(id int) []uint8 {
	base := id * q.dim
	return q.codes[base : base+q.dim : base+q.dim]
}

// Block returns the contiguous codes of rows [lo, hi), suitable for
// vec.Uint8SquaredDistsTo.
func (q *Quantized) Block(lo, hi int) []uint8 {
	return q.codes[lo*q.dim : hi*q.dim : hi*q.dim]
}

// Bytes returns the size of the codes table in bytes — the quantity the
// memory-saving benchmarks report against 8*dim*n for the float table.
func (q *Quantized) Bytes() int { return len(q.codes) }

// EncodeQuery encodes a query vector into dst (grown as needed) and returns
// the codes together with the query's exact decode error ||v - decode(codes)||.
// Queries may fall outside the training range; clamping only inflates the
// returned error, never invalidates it. A query with NaN components yields a
// NaN error, which fails every guarantee comparison and forces the exact
// fallback.
func (q *Quantized) EncodeQuery(v vec.Vector, dst []uint8) ([]uint8, float64) {
	if len(v) != q.dim {
		panic(fmt.Sprintf("store: query dim %d != quantized dim %d", len(v), q.dim))
	}
	if cap(dst) < q.dim {
		dst = make([]uint8, q.dim)
	}
	dst = dst[:q.dim]
	q.encode(v, dst)
	var sq float64
	for i, x := range v {
		d := x - (q.mins[i] + float64(dst[i])*q.delta)
		sq += d * d
	}
	return dst, math.Sqrt(sq)
}

// DecodedDist converts a code distance from the int32 kernels to the metric
// scale: delta * sqrt(raw) is the Euclidean distance between the two decoded
// vectors.
func (q *Quantized) DecodedDist(raw int32) float64 {
	return q.delta * math.Sqrt(float64(raw))
}

// QuantParts is the serializable form of a Quantized: exactly the trained
// state, with delta and DBErr left to be re-derived on load. Archive v2
// embeds this gob-encoded.
type QuantParts struct {
	Dim   int
	Codes []uint8
	Mins  []float64
	Maxs  []float64
	Clean bool
}

// Parts returns the quantizer's serializable state. The slices are shared,
// not copied; treat them as read-only.
func (q *Quantized) Parts() QuantParts {
	return QuantParts{Dim: q.dim, Codes: q.codes, Mins: q.mins, Maxs: q.maxs, Clean: q.clean}
}

// FromParts reconstructs a Quantized from persisted parts (see FromQuantParts
// for the validation performed).
func FromParts(p QuantParts) (*Quantized, error) {
	return FromQuantParts(p.Dim, p.Codes, p.Mins, p.Maxs, p.Clean)
}

// FromQuantParts reconstructs a Quantized from persisted parts, re-deriving
// delta and DBErr from the bounds. It validates the shapes so a corrupt
// archive cannot produce a store whose views panic later.
func FromQuantParts(dim int, codes []uint8, mins, maxs []float64, clean bool) (*Quantized, error) {
	if dim <= 0 {
		if len(codes) != 0 || len(mins) != 0 || len(maxs) != 0 {
			return nil, fmt.Errorf("store: quantized parts with dim %d", dim)
		}
		return &Quantized{clean: clean}, nil
	}
	if dim > maxSQ8Dim {
		return nil, fmt.Errorf("store: quantized dim %d exceeds SQ8 limit %d", dim, maxSQ8Dim)
	}
	if len(mins) != dim || len(maxs) != dim {
		return nil, fmt.Errorf("store: quantized bounds %d/%d values, want %d", len(mins), len(maxs), dim)
	}
	if len(codes)%dim != 0 {
		return nil, fmt.Errorf("store: quantized codes length %d not a multiple of dim %d", len(codes), dim)
	}
	for i := range mins {
		if !(mins[i] <= maxs[i]) { // also rejects NaN bounds
			return nil, fmt.Errorf("store: quantized bounds inverted at dim %d (%g > %g)", i, mins[i], maxs[i])
		}
	}
	q := &Quantized{
		dim:   dim,
		n:     len(codes) / dim,
		codes: codes,
		mins:  mins,
		maxs:  maxs,
		clean: clean,
	}
	q.finishTraining()
	return q, nil
}
