package store

import (
	"math"
	"math/rand"
	"testing"

	"qdcbir/internal/vec"
)

func randVectors(rng *rand.Rand, n, dim int) []vec.Vector {
	vs := make([]vec.Vector, n)
	for i := range vs {
		vs[i] = make(vec.Vector, dim)
		for j := range vs[i] {
			vs[i][j] = rng.NormFloat64()
		}
	}
	return vs
}

func TestFromVectorsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := randVectors(rng, 17, 5)
	s := FromVectors(vs)
	if s.Len() != 17 || s.Dim() != 5 {
		t.Fatalf("shape %d x %d", s.Len(), s.Dim())
	}
	for i, v := range vs {
		if !s.At(i).Equal(v) {
			t.Fatalf("row %d mismatch", i)
		}
	}
	views := s.Views()
	for i := range views {
		if &views[i][0] != &s.At(i)[0] {
			t.Fatalf("view %d is not zero-copy", i)
		}
	}
}

func TestViewsAreCappedAtRowBoundary(t *testing.T) {
	s := FromVectors(randVectors(rand.New(rand.NewSource(2)), 4, 3))
	v := s.At(1)
	if cap(v) != 3 {
		t.Fatalf("view cap %d, want 3", cap(v))
	}
	grown := append(v, 99) // must reallocate, not clobber row 2
	if s.At(2)[0] == 99 {
		t.Fatal("append through a view corrupted the next row")
	}
	_ = grown
}

func TestFromBacking(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	s, err := FromBacking(3, data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || !s.At(1).Equal(vec.Vector{4, 5, 6}) {
		t.Fatalf("bad rows: %v", s.At(1))
	}
	if &s.Backing()[0] != &data[0] {
		t.Fatal("FromBacking copied")
	}
	if _, err := FromBacking(4, data); err == nil {
		t.Fatal("accepted length not a multiple of dim")
	}
	empty, err := FromBacking(0, nil)
	if err != nil || empty.Len() != 0 || empty.Dim() != 0 {
		t.Fatalf("empty store: %v %d %d", err, empty.Len(), empty.Dim())
	}
}

func TestBlockAndBatchScoring(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vs := randVectors(rng, 23, 7)
	s := FromVectors(vs)
	q := randVectors(rng, 1, 7)[0]
	out := make([]float64, 9)
	s.SquaredDistsTo(q, 5, 14, out)
	for i := 0; i < 9; i++ {
		want := vec.SqL2(q, vs[5+i])
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: %v want %v", 5+i, out[i], want)
		}
	}
	if got := len(s.Block(5, 14)); got != 9*7 {
		t.Fatalf("block length %d", got)
	}
}

func TestEmptyStore(t *testing.T) {
	s := FromVectors(nil)
	if s.Len() != 0 || s.Dim() != 0 || len(s.Views()) != 0 {
		t.Fatal("empty store misbehaved")
	}
}
