#!/usr/bin/env bash
# ingest_soak.sh — end-to-end soak test of the dynamic ingest tier.
#
# Builds one corpus as a dynamic (v4) archive and boots it twice: a soak
# server that takes sustained writes and an untouched reference server that
# stands in for "a fresh single-segment rebuild of the live set". The soak
# server streams ~300 inserts (crossing the seal threshold) with interleaved
# deletes and sampled queries, then deletes everything it inserted — bringing
# the live set back to the reference's — and the two servers' query results
# are literally diffed: the segmented engine's contract is that a corpus
# smeared across sealed segments, memtable rows, and tombstones answers
# bit-identically to a clean single-segment build of the same live rows.
# A compaction pass then collapses the soak server's segments and the diff
# must still hold.
#
# Usage: scripts/ingest_soak.sh [port-base]   (default 18500)
set -euo pipefail

BASE=${1:-18500}
REF=$BASE
SOAK=$((BASE + 1))
# The memtable seals at 256 *live* rows (seg.Config.SealThreshold default)
# and the stream deletes every 3rd insert, so 420 inserts leave ~280 live —
# enough to cross the threshold and exercise a real seal mid-soak.
INSERTS=${INSERTS:-420}

for tool in curl jq; do
  command -v "$tool" >/dev/null || { echo "ingest_soak: $tool not found" >&2; exit 1; }
done

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "ingest_soak: $*" >&2; }

say "building binaries"
go build -o "$WORK/qdbuild" ./cmd/qdbuild
go build -o "$WORK/qdserve" ./cmd/qdserve

say "building dynamic (v4) archive"
"$WORK/qdbuild" -dynamic -out "$WORK/dyn.gob" -vectors -images 600 -categories 12 \
  -capacity 24 -reps 0.2 -seed 7 2>/dev/null

say "starting reference + soak servers"
"$WORK/qdserve" -db "$WORK/dyn.gob" -dynamic -addr ":$REF" 2>/dev/null & PIDS+=($!)
"$WORK/qdserve" -db "$WORK/dyn.gob" -dynamic -addr ":$SOAK" 2>/dev/null & PIDS+=($!)

wait_for() {
  for _ in $(seq 1 120); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    sleep 0.5
  done
  echo "ingest_soak: $1 never came up" >&2
  return 1
}
wait_for "http://localhost:$REF/healthz"
wait_for "http://localhost:$SOAK/healthz"

# vec_json i — a deterministic 37-d vector for insert #i (cheap LCG; the
# values only need to be stable across the run, not meaningful).
vec_json() {
  awk -v i="$1" 'BEGIN{
    s = (i * 2654435761) % 2147483648
    printf "["
    for (j = 0; j < 37; j++) {
      s = (s * 1103515245 + 12345) % 2147483648
      printf "%s%.6f", (j ? "," : ""), s / 2147483648
    }
    printf "]"
  }'
}

QUERY='{"relevant":[3,9,12,200,201,430,77],"k":25}'
NORM='{groups: .groups}'

# The generator's category split does not land exactly on -images, so take
# the reference's own count as the ground truth for the live set.
ORIG=$(curl -sf "http://localhost:$REF/v1/info" | jq .images)
say "corpus has $ORIG live images"

say "baseline diff (both servers untouched)"
curl -sf -X POST -d "$QUERY" "http://localhost:$REF/v1/query"  | jq -S "$NORM" > "$WORK/ref.json"
curl -sf -X POST -d "$QUERY" "http://localhost:$SOAK/v1/query" | jq -S "$NORM" > "$WORK/soak.json"
diff -u "$WORK/ref.json" "$WORK/soak.json" \
  || { echo "ingest_soak: servers disagree before any writes" >&2; exit 1; }

say "streaming $INSERTS inserts (deleting every 3rd, sampling queries every 25th)"
IDS=()
for ((i = 0; i < INSERTS; i++)); do
  body="{\"vector\": $(vec_json "$i"), \"label\": \"soak-$i\"}"
  id=$(curl -sf -X POST -d "$body" "http://localhost:$SOAK/v1/images" | jq -e .id) \
    || { echo "ingest_soak: insert $i failed" >&2; exit 1; }
  if (( i % 3 == 2 )); then
    curl -sf -X DELETE "http://localhost:$SOAK/v1/images/$id" >/dev/null \
      || { echo "ingest_soak: delete $id failed" >&2; exit 1; }
  else
    IDS+=("$id")
  fi
  if (( i % 25 == 0 )); then
    n=$(curl -sf -X POST -d "$QUERY" "http://localhost:$SOAK/v1/query" \
      | jq '[.groups[].images[]] | length') \
      || { echo "ingest_soak: sampled query during churn failed" >&2; exit 1; }
    [ "$n" -eq 25 ] || { echo "ingest_soak: sampled query returned $n of 25 images" >&2; exit 1; }
  fi
done

say "checking the soak server sealed segments"
curl -sf "http://localhost:$SOAK/v1/buildinfo" > "$WORK/bi_churn.json"
jq -e '.dynamic == true and .seals >= 1 and .epoch > 0' "$WORK/bi_churn.json" >/dev/null \
  || { echo "ingest_soak: buildinfo after churn: $(cat "$WORK/bi_churn.json")" >&2; exit 1; }

say "deleting the ${#IDS[@]} surviving inserts (live set back to the reference's)"
for id in "${IDS[@]}"; do
  curl -sf -X DELETE "http://localhost:$SOAK/v1/images/$id" >/dev/null \
    || { echo "ingest_soak: cleanup delete $id failed" >&2; exit 1; }
done
live=$(curl -sf "http://localhost:$SOAK/v1/info" | jq .images)
[ "$live" -eq "$ORIG" ] || { echo "ingest_soak: live count $live after cleanup, want $ORIG" >&2; exit 1; }

say "diffing churned multi-segment state against the clean rebuild"
curl -sf -X POST -d "$QUERY" "http://localhost:$SOAK/v1/query" | jq -S "$NORM" > "$WORK/soak_churned.json"
diff -u "$WORK/ref.json" "$WORK/soak_churned.json" \
  || { echo "ingest_soak: churned results diverge from clean rebuild" >&2; exit 1; }

say "diffing a seeded feedback session through both servers"
SID_R=$(curl -sf -X POST -d '{"seed":11}' "http://localhost:$REF/v1/sessions" | jq -r .session_id)
SID_S=$(curl -sf -X POST -d '{"seed":11}' "http://localhost:$SOAK/v1/sessions" | jq -r .session_id)
curl -sf "http://localhost:$REF/v1/sessions/$SID_R/candidates"  | jq -S .candidates > "$WORK/ref_cands.json"
curl -sf "http://localhost:$SOAK/v1/sessions/$SID_S/candidates" | jq -S .candidates > "$WORK/soak_cands.json"
diff -u "$WORK/ref_cands.json" "$WORK/soak_cands.json" \
  || { echo "ingest_soak: session displays diverge" >&2; exit 1; }
MARKS=$(jq -c '{relevant: [.[].id] | [.[range(0; length; 3)]]}' "$WORK/ref_cands.json")
curl -sf -X POST -d "$MARKS" "http://localhost:$REF/v1/sessions/$SID_R/feedback" >/dev/null
curl -sf -X POST -d "$MARKS" "http://localhost:$SOAK/v1/sessions/$SID_S/feedback" >/dev/null
curl -sf -X POST -d '{"k":25}' "http://localhost:$REF/v1/sessions/$SID_R/finalize"  | jq -S "$NORM" > "$WORK/ref_final.json"
curl -sf -X POST -d '{"k":25}' "http://localhost:$SOAK/v1/sessions/$SID_S/finalize" | jq -S "$NORM" > "$WORK/soak_final.json"
diff -u "$WORK/ref_final.json" "$WORK/soak_final.json" \
  || { echo "ingest_soak: session finalize diverges" >&2; exit 1; }

say "compacting the soak server and re-diffing"
curl -sf -X POST "http://localhost:$SOAK/v1/compact" > "$WORK/compact.json"
jq -e --argjson orig "$ORIG" '.segments == 1 and .live == $orig and .compactions >= 1' "$WORK/compact.json" >/dev/null \
  || { echo "ingest_soak: compact response: $(cat "$WORK/compact.json")" >&2; exit 1; }
curl -sf -X POST -d "$QUERY" "http://localhost:$SOAK/v1/query" | jq -S "$NORM" > "$WORK/soak_compacted.json"
diff -u "$WORK/ref.json" "$WORK/soak_compacted.json" \
  || { echo "ingest_soak: post-compaction results diverge from clean rebuild" >&2; exit 1; }

say "sweeping the soak server's observability surface"

# check_prom: every non-comment line of a Prometheus text exposition must be
# `name[{labels}] value` — one malformed line fails the scrape wholesale.
check_prom() {
  awk '
    /^#/ || /^$/ { next }
    !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.][-+0-9.eE]*)$/ {
      print "unparseable metric line: " $0 > "/dev/stderr"; bad = 1
    }
    END { exit bad }
  '
}

curl -sf "http://localhost:$SOAK/metrics" > "$WORK/soak_metrics.txt"
check_prom < "$WORK/soak_metrics.txt" \
  || { echo "ingest_soak: /metrics not valid Prometheus text" >&2; exit 1; }
for fam in qd_http_requests_total qd_seg_inserts_total qd_seg_deletes_total \
           qd_seg_seals_total qd_seg_compactions_total qd_seg_epoch; do
  grep -q "^$fam" "$WORK/soak_metrics.txt" \
    || { echo "ingest_soak: /metrics missing family $fam" >&2; exit 1; }
done

# The windowed ingest digests: the churn above must have left insert and
# delete samples, and the seal/compact phases at least one each.
curl -sf "http://localhost:$SOAK/v1/latency" > "$WORK/soak_latency.json"
jq -e '.digests | has("seg:insert") and has("seg:delete") and has("seg:seal") and has("seg:compact")' \
  "$WORK/soak_latency.json" >/dev/null \
  || { echo "ingest_soak: /v1/latency missing seg digests: $(cat "$WORK/soak_latency.json")" >&2; exit 1; }

curl -sf "http://localhost:$SOAK/v1/slow" | jq -e '.slowest | length > 0' >/dev/null \
  || { echo "ingest_soak: /v1/slow empty after the soak" >&2; exit 1; }

if [ -n "${ARTIFACT_DIR:-}" ]; then
  mkdir -p "$ARTIFACT_DIR"
  cp "$WORK/soak_metrics.txt" "$WORK/soak_latency.json" "$ARTIFACT_DIR/"
  say "kept soak metrics + latency digests in $ARTIFACT_DIR"
fi

say "OK: churned and compacted states are bit-identical to the clean rebuild"
