#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of the sharded serving tier.
#
# Builds one corpus, slices it into three shard archives, boots three qdserve
# shard replicas plus an unsharded reference qdserve, fronts the shards with
# qdrouter, drives a scripted feedback session through both stacks, and diffs
# the results. The sharded tier's contract is bit-exactness, so the diff is
# literal: same JSON groups, same IDs, same distances, same displays. A final
# stanza saturates an admission-controlled replica and checks overload is
# shed as structured 503s with Retry-After while answers stay bit-correct.
#
# Usage: scripts/cluster_smoke.sh [port-base]   (default 18400)
set -euo pipefail

BASE=${1:-18400}
SINGLE=$BASE
SHARD0=$((BASE + 1))
SHARD1=$((BASE + 2))
SHARD2=$((BASE + 3))
ROUTER=$((BASE + 4))

for tool in curl jq; do
  command -v "$tool" >/dev/null || { echo "cluster_smoke: $tool not found" >&2; exit 1; }
done

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "cluster_smoke: $*" >&2; }

say "building binaries"
go build -o "$WORK/qdbuild" ./cmd/qdbuild
go build -o "$WORK/qdserve" ./cmd/qdserve
go build -o "$WORK/qdrouter" ./cmd/qdrouter

say "building corpus + 3 shard archives"
"$WORK/qdbuild" -out "$WORK/db.gob" -vectors -images 600 -categories 12 \
  -capacity 24 -reps 0.2 -seed 7 -shards 3 2>/dev/null

say "starting fleet"
"$WORK/qdserve" -db "$WORK/db.gob" -addr ":$SINGLE" 2>/dev/null & PIDS+=($!)
"$WORK/qdserve" -db "$WORK/db.shard0.gob" -addr ":$SHARD0" 2>/dev/null & PIDS+=($!)
"$WORK/qdserve" -db "$WORK/db.shard1.gob" -addr ":$SHARD1" 2>/dev/null & PIDS+=($!)
"$WORK/qdserve" -db "$WORK/db.shard2.gob" -addr ":$SHARD2" 2>/dev/null & PIDS+=($!)
"$WORK/qdrouter" -addr ":$ROUTER" -wait 60s \
  -replica "0=http://localhost:$SHARD0" \
  -replica "1=http://localhost:$SHARD1" \
  -replica "2=http://localhost:$SHARD2" 2>/dev/null & PIDS+=($!)

wait_for() {
  for _ in $(seq 1 120); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    sleep 0.5
  done
  echo "cluster_smoke: $1 never came up" >&2
  return 1
}
wait_for "http://localhost:$SINGLE/healthz"
wait_for "http://localhost:$ROUTER/healthz"

# The router only serves after fleet verification, so a healthy /healthz
# already proves the precision/signature/version checks passed.
curl -sf "http://localhost:$ROUTER/v1/buildinfo" | jq -e '.shards == 3' >/dev/null \
  || { echo "cluster_smoke: router does not report 3 shards" >&2; exit 1; }

say "diffing one-shot query (initial retrieval + finalize arithmetic)"
QUERY='{"relevant":[3,9,12,200,201,430,77],"k":25}'
# final_reads legitimately differs (the router's finalize runs on the shards);
# everything else — groups, IDs, scores, feedback reads, expansions — must be
# byte-identical.
NORM='{groups: .groups, feedback_reads: .stats.feedback_reads, expansions: .stats.expansions}'
curl -sf -X POST -d "$QUERY" "http://localhost:$SINGLE/v1/query" | jq -S "$NORM" > "$WORK/single_query.json"
curl -sf -X POST -d "$QUERY" "http://localhost:$ROUTER/v1/query" | jq -S "$NORM" > "$WORK/router_query.json"
diff -u "$WORK/single_query.json" "$WORK/router_query.json" \
  || { echo "cluster_smoke: routed /v1/query diverges from single node" >&2; exit 1; }

say "driving a feedback session through both stacks (seed 11)"
SID_S=$(curl -sf -X POST -d '{"seed":11}' "http://localhost:$SINGLE/v1/sessions" | jq -r .session_id)
SID_R=$(curl -sf -X POST -d '{"seed":11}' "http://localhost:$ROUTER/v1/sessions" | jq -r .session_id)

for round in 1 2; do
  curl -sf "http://localhost:$SINGLE/v1/sessions/$SID_S/candidates" | jq -S .candidates > "$WORK/single_cands.json"
  curl -sf "http://localhost:$ROUTER/v1/sessions/$SID_R/candidates" | jq -S .candidates > "$WORK/router_cands.json"
  diff -u "$WORK/single_cands.json" "$WORK/router_cands.json" \
    || { echo "cluster_smoke: round $round displays diverge" >&2; exit 1; }
  # Mark every third candidate relevant.
  MARKS=$(jq -c '{relevant: [.[].id] | [.[range(0; length; 3)]]}' "$WORK/single_cands.json")
  curl -sf -X POST -d "$MARKS" "http://localhost:$SINGLE/v1/sessions/$SID_S/feedback" > "$WORK/single_fb.json"
  curl -sf -X POST -d "$MARKS" "http://localhost:$ROUTER/v1/sessions/$SID_R/feedback" > "$WORK/router_fb.json"
  diff <(jq -S . "$WORK/single_fb.json") <(jq -S . "$WORK/router_fb.json") \
    || { echo "cluster_smoke: round $round feedback acks diverge" >&2; exit 1; }
done

say "diffing distributed finalize against single node"
curl -sf -X POST -d '{"k":25}' "http://localhost:$SINGLE/v1/sessions/$SID_S/finalize" | jq -S "$NORM" > "$WORK/single_final.json"
curl -sf -X POST -d '{"k":25}' "http://localhost:$ROUTER/v1/sessions/$SID_R/finalize" | jq -S "$NORM" > "$WORK/router_final.json"
diff -u "$WORK/single_final.json" "$WORK/router_final.json" \
  || { echo "cluster_smoke: distributed finalize diverges from single node" >&2; exit 1; }

jq -e '.groups | length > 0' "$WORK/router_final.json" >/dev/null \
  || { echo "cluster_smoke: finalize returned no groups" >&2; exit 1; }

say "sweeping the fleet observability surface"

# check_prom: every non-comment line of a Prometheus text exposition must be
# `name[{labels}] value` — one malformed line fails the scrape wholesale.
check_prom() {
  awk '
    /^#/ || /^$/ { next }
    !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.][-+0-9.eE]*)$/ {
      print "unparseable metric line: " $0 > "/dev/stderr"; bad = 1
    }
    END { exit bad }
  '
}

curl -sf "http://localhost:$ROUTER/metrics" > "$WORK/router_metrics.txt"
check_prom < "$WORK/router_metrics.txt" \
  || { echo "cluster_smoke: router /metrics not valid Prometheus text" >&2; exit 1; }
for fam in qd_router_scatters_total qd_router_requests_total \
           qd_router_fanout_seconds qd_router_merge_seconds \
           qd_router_straggler_wait_seconds; do
  grep -q "^$fam" "$WORK/router_metrics.txt" \
    || { echo "cluster_smoke: router /metrics missing family $fam" >&2; exit 1; }
done
curl -sf "http://localhost:$SHARD0/metrics" > "$WORK/replica_metrics.txt"
check_prom < "$WORK/replica_metrics.txt" \
  || { echo "cluster_smoke: replica /metrics not valid Prometheus text" >&2; exit 1; }
grep -q '^qd_http_requests_total' "$WORK/replica_metrics.txt" \
  || { echo "cluster_smoke: replica /metrics missing qd_http_requests_total" >&2; exit 1; }

# Fleet-merged latency digests: all three replicas scraped, the shard search
# endpoint visible fleet-wide and per shard.
curl -sf "http://localhost:$ROUTER/v1/fleet/latency?refresh=1" > "$WORK/fleet_latency.json"
jq -e '.replicas == 3 and (.errors // [] | length == 0)
       and (.fleet | has("endpoint:/v1/shard/search"))
       and (.shards | length == 3)' "$WORK/fleet_latency.json" >/dev/null \
  || { echo "cluster_smoke: fleet latency malformed: $(cat "$WORK/fleet_latency.json")" >&2; exit 1; }
curl -sf "http://localhost:$ROUTER/v1/fleet/stats?refresh=1" \
  | jq -e '.counters.qd_http_requests_total > 0' >/dev/null \
  || { echo "cluster_smoke: fleet stats missing aggregated counters" >&2; exit 1; }

# Slow-query exemplars on both tiers: entries with shard breakdowns and a
# stitched-trace reference on the router side.
curl -sf "http://localhost:$ROUTER/v1/slow" | jq -e \
  '.slowest | length > 0 and (.[0].shards | length == 3) and .[0].trace_id > 0' >/dev/null \
  || { echo "cluster_smoke: router /v1/slow empty or missing breakdowns" >&2; exit 1; }
curl -sf "http://localhost:$SHARD0/v1/slow" | jq -e '.slowest | length > 0' >/dev/null \
  || { echo "cluster_smoke: replica /v1/slow empty" >&2; exit 1; }

# Stitched cross-process trace: the routed queries above must have left
# Perfetto-loadable traces with router and shard tracks. Kept as a CI
# artifact when ARTIFACT_DIR is set.
curl -sf "http://localhost:$ROUTER/v1/traces?format=perfetto" > "$WORK/stitched_trace.json"
jq -e '.traceEvents | length > 0' "$WORK/stitched_trace.json" >/dev/null \
  || { echo "cluster_smoke: stitched Perfetto export empty" >&2; exit 1; }
jq -e '[.traceEvents[] | select(.ph == "M" and .name == "thread_name") | .args.name]
       | (index("router") != null) and (index("shard 0") != null)' \
  "$WORK/stitched_trace.json" >/dev/null \
  || { echo "cluster_smoke: stitched trace missing router/shard tracks" >&2; exit 1; }
if [ -n "${ARTIFACT_DIR:-}" ]; then
  mkdir -p "$ARTIFACT_DIR"
  cp "$WORK/stitched_trace.json" "$WORK/fleet_latency.json" "$ARTIFACT_DIR/"
  say "kept stitched trace + fleet digests in $ARTIFACT_DIR"
fi

say "saturating an admission-controlled replica (max-concurrent 1, queue-bound 0)"
SAT=$((BASE + 5))
"$WORK/qdserve" -db "$WORK/db.shard0.gob" -addr ":$SAT" \
  -max-concurrent 1 -queue-bound 0 -coalesce-window 750ms 2>/dev/null & PIDS+=($!)
wait_for "http://localhost:$SAT/healthz"

# Deterministic saturation: a shard-search leg against the root opens a
# coalescing batch and dallies the full 750ms window for company, holding the
# replica's only execution slot the whole time. With queue-bound 0, every
# /v1/query that lands during the window must shed — no timing luck needed.
curl -sf "http://localhost:$SAT/v1/shard/topology" \
  | jq -c '{node_id: .nodes[0].id, k: 10, query: .nodes[0].center}' > "$WORK/sat_root_req.json"
curl -s -X POST -d @"$WORK/sat_root_req.json" \
  "http://localhost:$SAT/v1/shard/search" -o "$WORK/sat_holder.json" &
HOLDER=$!
for _ in $(seq 1 200); do
  curl -s "http://localhost:$SAT/metrics" | grep -q '^qd_sched_inflight 1$' && break
  sleep 0.01
done

# One curl process with --parallel starts all 20 transfers inside the window
# (separate curl processes spawn slower than a 503 is written and would
# serialize). Multiple -o flags pair with URLs one-to-one; -D does not, so
# statuses and Retry-After come from the per-transfer write-out.
FLOOD=()
for i in $(seq 1 20); do
  FLOOD+=(-o "$WORK/sat_body_$i" "http://localhost:$SAT/v1/query")
done
curl -s --parallel --parallel-immediate --parallel-max 20 -X POST -d "$QUERY" \
  -w '%{http_code} %header{retry-after}\n' "${FLOOD[@]}" \
  > "$WORK/sat_codes.txt" 2>/dev/null || true
wait "$HOLDER" \
  || { echo "cluster_smoke: slot-holding shard search failed" >&2; exit 1; }

SHED=$(grep -c '^503 ' "$WORK/sat_codes.txt" || true)
[ "$SHED" -ge 1 ] \
  || { echo "cluster_smoke: 20-way flood against a held slot shed nothing" >&2; exit 1; }
if grep '^503' "$WORK/sat_codes.txt" | grep -vq '^503 [0-9]'; then
  echo "cluster_smoke: shed 503 missing Retry-After: $(cat "$WORK/sat_codes.txt")" >&2; exit 1
fi
OVER=0
for i in $(seq 1 20); do
  jq -e '.code == "overloaded"' "$WORK/sat_body_$i" >/dev/null 2>&1 && OVER=$((OVER + 1))
done
[ "$OVER" -eq "$SHED" ] \
  || { echo "cluster_smoke: $SHED sheds but $OVER code=overloaded bodies" >&2; exit 1; }
say "flood shed $SHED of 20 requests, all with Retry-After + code=overloaded"

grep -q '^qd_sched_shed_total [1-9]' <(curl -sf "http://localhost:$SAT/metrics") \
  || { echo "cluster_smoke: saturated replica /metrics missing qd_sched_shed_total" >&2; exit 1; }

# After the storm the fleet still answers bit-correct: the held leg resolved
# through the coalescing path, the saturated replica answers a fresh shard
# search byte-identically to the untouched shard-0 replica, and the routed
# query still matches the single-node reference.
curl -sf -X POST -d @"$WORK/sat_root_req.json" "http://localhost:$SHARD0/v1/shard/search" \
  | jq -S . > "$WORK/ref_shard_search.json"
diff -u "$WORK/ref_shard_search.json" <(jq -S . "$WORK/sat_holder.json") \
  || { echo "cluster_smoke: slot-holding search diverges from untouched replica" >&2; exit 1; }
curl -sf -X POST -d @"$WORK/sat_root_req.json" "http://localhost:$SAT/v1/shard/search" \
  | jq -S . > "$WORK/sat_shard_search.json"
diff -u "$WORK/ref_shard_search.json" "$WORK/sat_shard_search.json" \
  || { echo "cluster_smoke: saturated replica diverges after the flood" >&2; exit 1; }
curl -sf -X POST -d "$QUERY" "http://localhost:$ROUTER/v1/query" | jq -S "$NORM" > "$WORK/router_query2.json"
diff -u "$WORK/single_query.json" "$WORK/router_query2.json" \
  || { echo "cluster_smoke: routed query diverges after the flood" >&2; exit 1; }

say "OK: sharded results are bit-identical to single node"
