package qdcbir

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"qdcbir/internal/rstar"
	"qdcbir/internal/shard"
	"qdcbir/internal/source"
	"qdcbir/internal/store"
)

// SliceShard partitions the built system's corpus by consistent hash and
// packages shard `index` of `shards`. The returned archive embeds a freshly
// built local system over the shard's rows (same build configuration, local
// tree shape) plus the FULL system's topology table — restricted searches run
// against the single-node hierarchy's node IDs, which is what makes
// scatter-gather merges bit-identical to the unsharded result.
func SliceShard(ctx context.Context, sys *System, shards, index int) (*shard.Archive, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", shards)
	}
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("shard: index %d outside [0,%d)", index, shards)
	}
	st := sys.Corpus().Store()
	n, dim := st.Len(), st.Dim()
	var globals []int
	for gid := 0; gid < n; gid++ {
		if shard.Assign(gid, shards) == index {
			globals = append(globals, gid)
		}
	}
	if len(globals) == 0 {
		return nil, fmt.Errorf("shard: shard %d of %d holds no images (corpus of %d too small)", index, shards, n)
	}

	// Build the local subset as a standalone system under the same
	// configuration. Row order preserves global-ID order, so local row i maps
	// to globals[i].
	batch := &source.Batch{Dim: dim, Labels: make([]string, len(globals))}
	if st.Precision() == store.Float32 {
		backing := st.Backing32()
		batch.Data32 = make([]float32, 0, len(globals)*dim)
		for _, gid := range globals {
			batch.Data32 = append(batch.Data32, backing[gid*dim:(gid+1)*dim]...)
		}
	} else {
		backing := st.Backing()
		batch.Data = make([]float64, 0, len(globals)*dim)
		for _, gid := range globals {
			batch.Data = append(batch.Data, backing[gid*dim:(gid+1)*dim]...)
		}
	}
	for i, gid := range globals {
		batch.Labels[i] = sys.SubconceptOf(gid)
	}
	base := sys.Config()
	local, err := BuildFromSourceContext(ctx, Config{
		Seed:              base.Seed,
		NodeCapacity:      base.NodeCapacity,
		RepFraction:       base.RepFraction,
		BoundaryThreshold: base.BoundaryThreshold,
		DisplayCount:      base.DisplayCount,
		Hierarchy:         base.Hierarchy,
		Parallelism:       base.Parallelism,
		Quantized:         base.Quantized,
		RerankFactor:      base.RerankFactor,
		Float32:           base.Float32,
	}, sliceSource{batch})
	if err != nil {
		return nil, fmt.Errorf("shard: build local system: %w", err)
	}
	var sysBuf bytes.Buffer
	if err := local.Save(&sysBuf); err != nil {
		return nil, fmt.Errorf("shard: embed local system: %w", err)
	}

	topo := shard.TopologyOf(sys.RFS(), sys.SubconceptOf)
	leafID := make([]uint64, len(globals))
	for i, gid := range globals {
		leafID[i] = uint64(sys.RFS().LeafOf(rstar.ItemID(gid)).ID())
	}
	a := &shard.Archive{
		Meta: shard.Meta{
			ShardIndex:     index,
			ShardCount:     shards,
			Images:         n,
			LocalImages:    len(globals),
			Dim:            dim,
			Precision:      scanPrecision(base),
			Quantized:      sys.Quantized(),
			ArchiveVersion: ArchiveVersionCurrent,
			CorpusSig:      shardCorpusSignature(sys, topo, shards),
			Boundary:       base.BoundaryThreshold,
			DisplayCount:   base.DisplayCount,
		},
		Topo:    topo,
		Globals: globals,
		LeafID:  leafID,
		Sys:     sysBuf.Bytes(),
	}
	return a, nil
}

// SliceShards packages every shard of an N-way partition.
func SliceShards(ctx context.Context, sys *System, shards int) ([]*shard.Archive, error) {
	out := make([]*shard.Archive, shards)
	for i := 0; i < shards; i++ {
		a, err := SliceShard(ctx, sys, shards, i)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// scanPrecision tags the configuration's distance result mode: "f32" when
// unweighted sweeps run the float32 kernels (Config.Float32), "f64"
// otherwise. This is a property of the scan, not of the storage — a float32
// mode over float64-native data still rounds every distance to float32, so
// two fleets differing only in this tag must never merge.
func scanPrecision(cfg Config) string {
	if cfg.Float32 {
		return "f32"
	}
	return "f64"
}

// OpenShard reads a shard archive and assembles the serving replica along
// with the standalone system over the shard's local subset (which hosts the
// replica's feedback-session engine).
func OpenShard(r io.Reader) (*shard.Replica, *System, error) {
	a, err := shard.ReadArchive(r)
	if err != nil {
		return nil, nil, err
	}
	sys, err := Load(bytes.NewReader(a.Sys))
	if err != nil {
		return nil, nil, fmt.Errorf("shard: embedded system: %w", err)
	}
	st := sys.Corpus().Store()
	if st.Len() != len(a.Globals) {
		return nil, nil, fmt.Errorf("shard: embedded system holds %d rows, archive lists %d", st.Len(), len(a.Globals))
	}
	if got := scanPrecision(sys.Config()); got != a.Meta.Precision {
		return nil, nil, fmt.Errorf("shard: embedded system scans at %s, archive says %s", got, a.Meta.Precision)
	}
	labels := make([]string, st.Len())
	for li := range labels {
		labels[li] = sys.SubconceptOf(li)
	}
	rep, err := shard.NewReplica(a, shard.LocalRows{
		Dim: st.Dim(),
		N:   st.Len(),
		// The scan mode, not the storage precision, picks the replica's f32
		// kernel path — it must mirror what the single-node tree sweeps.
		F32:    sys.Config().Float32,
		At:     func(li int) []float64 { return st.At(li) },
		Labels: labels,
	})
	if err != nil {
		return nil, nil, err
	}
	return rep, sys, nil
}

// OpenShardFile reads a shard archive from a file.
func OpenShardFile(path string) (*shard.Replica, *System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return OpenShard(f)
}

// shardCorpusSignature digests what must be identical across a fleet: the
// shard count, the corpus (size, dimension, precision, every vector bit) and
// the hierarchy shape. Two slices merge safely iff their signatures match.
func shardCorpusSignature(sys *System, topo *shard.Topology, shards int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte("qdshard-sig-1"))
	st := sys.Corpus().Store()
	wu(uint64(shards))
	wu(uint64(st.Len()))
	wu(uint64(st.Dim()))
	h.Write([]byte(st.Precision().String()))
	if st.Precision() == store.Float32 {
		for _, v := range st.Backing32() {
			binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
			h.Write(buf[:4])
		}
	} else {
		for _, v := range st.Backing() {
			wu(math.Float64bits(v))
		}
	}
	wu(uint64(len(topo.Nodes)))
	for _, n := range topo.Nodes {
		wu(n.ID)
		wu(uint64(int64(n.Parent)))
		wu(uint64(n.Size))
	}
	return h.Sum64()
}

// sliceSource adapts an in-memory batch to the source.VectorSource interface.
type sliceSource struct{ b *source.Batch }

func (sliceSource) Format() string                    { return "shard-slice" }
func (s sliceSource) Vectors() (*source.Batch, error) { return s.b, nil }
