module qdcbir

go 1.22
