package qdcbir

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"qdcbir/internal/rstar"
)

// parTestConfig is a small corpus that still produces a multi-level RFS
// hierarchy, so the determinism checks cover every parallel stage.
func parTestConfig(parallelism int) Config {
	c := SmallConfig()
	c.Categories = 8
	c.Images = 400
	c.Parallelism = parallelism
	return c
}

// TestParallelBuildDeterminism is the regression test behind Config's
// byte-identical promise: builds at Parallelism 1 and 8 must agree on corpus
// vectors, tree shape, representative sets, and query results.
func TestParallelBuildDeterminism(t *testing.T) {
	serial, err := Build(parTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(parTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}

	// Corpus vectors.
	cs, cp := serial.Corpus(), parallel.Corpus()
	if cs.Len() != cp.Len() {
		t.Fatalf("corpus size %d vs %d", cs.Len(), cp.Len())
	}
	for i := range cs.Vectors {
		vs, vp := cs.Vectors[i], cp.Vectors[i]
		for j := range vs {
			if vs[j] != vp[j] {
				t.Fatalf("vector %d dim %d: %v vs %v", i, j, vs[j], vp[j])
			}
		}
	}

	// Tree shape: page IDs, levels, and entry identities in stored order.
	shape := func(s *System) []string {
		var out []string
		s.RFS().Tree().Walk(func(n *rstar.Node, level int) {
			row := fmt.Sprintf("%d@%d:", n.ID(), level)
			if n.IsLeaf() {
				for _, it := range n.Items() {
					row += fmt.Sprintf(" %d", it.ID)
				}
			} else {
				for _, c := range n.Children() {
					row += fmt.Sprintf(" n%d", c.ID())
				}
			}
			out = append(out, row)
		})
		return out
	}
	shS, shP := shape(serial), shape(parallel)
	if len(shS) != len(shP) {
		t.Fatalf("tree shape: %d nodes vs %d", len(shS), len(shP))
	}
	for i := range shS {
		if shS[i] != shP[i] {
			t.Fatalf("tree node %d: %q vs %q", i, shS[i], shP[i])
		}
	}

	// Representative sets, compared per node via the leaf index.
	if serial.RepresentativeCount() != parallel.RepresentativeCount() {
		t.Fatalf("rep count %d vs %d", serial.RepresentativeCount(), parallel.RepresentativeCount())
	}
	rs, rp := serial.RFS().AllReps(), parallel.RFS().AllReps()
	for i := range rs {
		if rs[i] != rp[i] {
			t.Fatalf("rep %d: %d vs %d", i, rs[i], rp[i])
		}
	}

	// End to end: identical sessions retrieve identical images with
	// identical simulated I/O.
	run := func(s *System) ([]int, Stats) {
		t.Helper()
		sess := s.NewSession(7)
		for round := 0; round < 3; round++ {
			cands := sess.Candidates()
			var marks []int
			want := cands[0].Subconcept
			for _, c := range cands {
				if c.Subconcept == want {
					marks = append(marks, c.ID)
				}
			}
			if err := sess.Feedback(marks); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sess.Finalize(40)
		if err != nil {
			t.Fatal(err)
		}
		return res.IDs(), sess.Stats()
	}
	idsS, statsS := run(serial)
	idsP, statsP := run(parallel)
	if len(idsS) != len(idsP) {
		t.Fatalf("result size %d vs %d", len(idsS), len(idsP))
	}
	for i := range idsS {
		if idsS[i] != idsP[i] {
			t.Fatalf("result %d: image %d vs %d", i, idsS[i], idsP[i])
		}
	}
	if statsS != statsP {
		t.Fatalf("stats diverge: %+v vs %+v", statsS, statsP)
	}
}

// TestConcurrentSystemUse hammers one System from many goroutines — KNN
// searches interleaved with full feedback sessions — and relies on the race
// detector (CI runs go test -race) to catch unsynchronized access.
func TestConcurrentSystemUse(t *testing.T) {
	sys, err := Build(parTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sess := sys.NewSession(seed)
			for round := 0; round < 2; round++ {
				cands := sess.Candidates()
				if len(cands) == 0 {
					errc <- errors.New("no candidates")
					return
				}
				if err := sess.Feedback([]int{cands[0].ID, cands[len(cands)/2].ID}); err != nil {
					errc <- err
					return
				}
			}
			if _, err := sess.Finalize(20); err != nil {
				errc <- err
			}
		}(int64(w + 1))
		wg.Add(1)
		go func(img int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				ns, err := sys.KNN((img+i*37)%sys.Len(), 10)
				if err != nil {
					errc <- err
					return
				}
				if len(ns) != 10 {
					errc <- fmt.Errorf("knn returned %d", len(ns))
					return
				}
			}
		}(w * 13)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestContextCancellation covers the thin context-aware wrappers at the root
// API: build, global k-NN, and finalize all honour a dead context.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, parTestConfig(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext err = %v, want context.Canceled", err)
	}

	sys, err := Build(parTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.KNNContext(ctx, 0, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNNContext err = %v, want context.Canceled", err)
	}

	sess := sys.NewSession(3)
	if err := sess.Feedback([]int{sess.Candidates()[0].ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.FinalizeContext(ctx, 20); !errors.Is(err, context.Canceled) {
		t.Fatalf("FinalizeContext err = %v, want context.Canceled", err)
	}
}
