package qdcbir

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"qdcbir/internal/obs"
	"qdcbir/internal/seg"
	"qdcbir/internal/vec"
)

// DynamicConfig configures a Dynamic system: the segmented epoch/snapshot
// engine (internal/seg) wrapped with image labels and archive persistence.
// Zero values take the same defaults the engine applies.
type DynamicConfig struct {
	// Dim is the feature dimensionality. Required for NewDynamic; OpenDynamic
	// and LoadDynamic infer it from the adopted corpus or archive.
	Dim int
	// SealThreshold is the live-row count at which the memtable seals into an
	// immutable segment (default 256).
	SealThreshold int
	// MaxSegments is the sealed-segment count beyond which background
	// compaction kicks in (default 4).
	MaxSegments int

	// Seed, NodeCapacity, RepFraction, BoundaryThreshold, and Parallelism
	// play the same roles as in Config; segment trees are built with these
	// knobs so a single sealed segment of the whole corpus is the same
	// structure a monolithic build would produce.
	Seed              int64
	NodeCapacity      int
	RepFraction       float64
	BoundaryThreshold float64
	Parallelism       int

	// Quantized and RerankFactor enable the per-segment SQ8 two-phase scan;
	// Float32 selects the float32 result mode. Semantics match Config:
	// quantization is an invisible optimization (exact rerank), Float32 is a
	// distinct documented precision mode and takes precedence.
	Quantized    bool
	RerankFactor int
	Float32      bool

	// DisableAutoCompact turns off background compaction (Compact can still
	// be called explicitly). Mostly for tests and benchmarks.
	DisableAutoCompact bool

	// Observer receives ingest metrics (qd_seg_* counters and gauges) when
	// non-nil. Not persisted.
	Observer *obs.Observer
}

func (c DynamicConfig) segConfig() seg.Config {
	return seg.Config{
		Dim:                c.Dim,
		SealThreshold:      c.SealThreshold,
		MaxSegments:        c.MaxSegments,
		Float32:            c.Float32,
		Quantized:          c.Quantized,
		RerankFactor:       c.RerankFactor,
		BoundaryThreshold:  c.BoundaryThreshold,
		Seed:               c.Seed,
		RepFraction:        c.RepFraction,
		NodeCapacity:       c.NodeCapacity,
		Parallelism:        c.Parallelism,
		DisableAutoCompact: c.DisableAutoCompact,
		Observer:           c.Observer,
	}
}

// Dynamic is an online-ingest retrieval system: the segmented epoch/snapshot
// engine plus a label table mapping image IDs to caller-supplied names.
//
// Concurrency contract: any number of goroutines may query (KNN*, sessions,
// QueryByExamples) while others Insert and Delete — queries pin an immutable
// snapshot and never block on writers. The label table has its own lock and
// is safe for concurrent use.
type Dynamic struct {
	cfg DynamicConfig
	db  *seg.DB

	mu     sync.RWMutex
	labels map[int]string
}

// NewDynamic creates an empty dynamic system. cfg.Dim must be positive.
func NewDynamic(cfg DynamicConfig) (*Dynamic, error) {
	db, err := seg.New(cfg.segConfig())
	if err != nil {
		return nil, err
	}
	cfg = dynamicConfigFrom(db.Config(), cfg.Observer)
	return &Dynamic{cfg: cfg, db: db, labels: make(map[int]string)}, nil
}

// dynamicConfigFrom mirrors the engine's resolved knobs back into the root
// config, so Config() and the archive reflect applied defaults.
func dynamicConfigFrom(sc seg.Config, observer *obs.Observer) DynamicConfig {
	return DynamicConfig{
		Dim:                sc.Dim,
		SealThreshold:      sc.SealThreshold,
		MaxSegments:        sc.MaxSegments,
		Seed:               sc.Seed,
		NodeCapacity:       sc.NodeCapacity,
		RepFraction:        sc.RepFraction,
		BoundaryThreshold:  sc.BoundaryThreshold,
		Parallelism:        sc.Parallelism,
		Quantized:          sc.Quantized,
		RerankFactor:       sc.RerankFactor,
		Float32:            sc.Float32,
		DisableAutoCompact: sc.DisableAutoCompact,
		Observer:           observer,
	}
}

// OpenDynamic adopts a built (or loaded) monolithic System as a dynamic
// system: the whole corpus becomes one sealed segment — store and tree are
// shared, not rebuilt — and subsequent inserts land in a fresh memtable.
// Queries over the adopted system return exactly what the System returned.
// Zero fields of cfg inherit the System's knobs; cfg.Dim, if set, must match
// the corpus. Labels are seeded with each image's subconcept name.
//
// The System's structures must no longer be mutated after adoption; querying
// the System itself concurrently remains safe (segments are read-only).
func OpenDynamic(sys *System, cfg DynamicConfig) (*Dynamic, error) {
	st := sys.corpus.Store()
	if cfg.Dim == 0 {
		cfg.Dim = st.Dim()
	}
	if st.Len() > 0 && cfg.Dim != st.Dim() {
		return nil, fmt.Errorf("qdcbir: dynamic dim %d does not match corpus dim %d", cfg.Dim, st.Dim())
	}
	if cfg.Seed == 0 {
		cfg.Seed = sys.cfg.Seed
	}
	if cfg.NodeCapacity == 0 {
		cfg.NodeCapacity = sys.cfg.NodeCapacity
	}
	if cfg.RepFraction == 0 {
		cfg.RepFraction = sys.cfg.RepFraction
	}
	if cfg.BoundaryThreshold == 0 {
		cfg.BoundaryThreshold = sys.cfg.BoundaryThreshold
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = sys.cfg.Parallelism
	}
	if !cfg.Quantized {
		cfg.Quantized = sys.cfg.Quantized
	}
	if cfg.RerankFactor == 0 {
		cfg.RerankFactor = sys.cfg.RerankFactor
	}
	if !cfg.Float32 {
		cfg.Float32 = sys.cfg.Float32
	}

	n := st.Len()
	var sealed []seg.SealedInput
	if n > 0 {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		sealed = []seg.SealedInput{{
			IDs:       ids,
			Store:     st,
			Structure: sys.rfs,
			Quantized: sys.quant != nil,
		}}
	}
	db, err := seg.Restore(cfg.segConfig(), sealed, seg.MemInput{BaseID: n}, n, 0)
	if err != nil {
		return nil, err
	}
	labels := make(map[int]string, n)
	for i := 0; i < n; i++ {
		if sc := sys.SubconceptOf(i); sc != "" {
			labels[i] = sc
		}
	}
	return &Dynamic{cfg: dynamicConfigFrom(db.Config(), cfg.Observer), db: db, labels: labels}, nil
}

// Config returns the resolved configuration.
func (d *Dynamic) Config() DynamicConfig { return d.cfg }

// DB exposes the underlying segmented engine for snapshot-level access
// (Acquire, sessions, stats).
func (d *Dynamic) DB() *seg.DB { return d.db }

// Stats reports the current snapshot's shape plus lifetime seal/compaction
// counters.
func (d *Dynamic) Stats() seg.Stats { return d.db.Stats() }

// Insert adds one image vector under the given label and returns its ID.
// Never blocks concurrent queries.
func (d *Dynamic) Insert(v vec.Vector, label string) (int, error) {
	id, err := d.db.Insert(v)
	if err != nil {
		return 0, err
	}
	if label != "" {
		d.mu.Lock()
		d.labels[id] = label
		d.mu.Unlock()
	}
	return id, nil
}

// Delete tombstones one image. Pinned snapshots keep seeing the row; new
// snapshots do not. The label is removed immediately — labels describe the
// live set, not pinned history.
func (d *Dynamic) Delete(id int) error {
	if err := d.db.Delete(id); err != nil {
		return err
	}
	d.mu.Lock()
	delete(d.labels, id)
	d.mu.Unlock()
	return nil
}

// LabelOf returns the label of a live image ("" when unknown or unlabeled).
func (d *Dynamic) LabelOf(id int) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.labels[id]
}

// KNN answers a k-nearest-neighbour query against the current snapshot.
func (d *Dynamic) KNN(ctx context.Context, q vec.Vector, k int) ([]seg.Neighbor, error) {
	s := d.db.Acquire()
	defer s.Release()
	return s.KNNCtx(ctx, q, k)
}

// QueryByExamples runs the query-decomposition finalize over the current
// snapshot: the example images are clustered into multiple neighborhoods,
// localized subqueries run per cluster, and the merged display is returned
// (nil weights means unweighted).
func (d *Dynamic) QueryByExamples(ctx context.Context, examples []int, k int, weights vec.Vector) (*seg.Result, error) {
	s := d.db.Acquire()
	defer s.Release()
	return s.QueryByExamplesCtx(ctx, examples, k, weights)
}

// NewSession starts a relevance-feedback session pinned to the current
// snapshot. The caller must Release (or Finalize and Release) it.
func (d *Dynamic) NewSession(seed int64) *seg.Session {
	return d.db.NewSession(rand.New(rand.NewSource(seed)))
}

// RestoreSession resumes an exported session state against the current
// snapshot (see seg.SessionState for what survives the trip).
func (d *Dynamic) RestoreSession(st *seg.SessionState, seed int64) (*seg.Session, error) {
	return d.db.RestoreSession(st, rand.New(rand.NewSource(seed)))
}

// Compact merges all sealed segments into one, inline. Background
// auto-compaction runs regardless unless DisableAutoCompact is set.
func (d *Dynamic) Compact(ctx context.Context) error { return d.db.Compact(ctx) }

// Close stops background compaction and rejects further writes. Pinned
// snapshots remain valid and may drain.
func (d *Dynamic) Close() { d.db.Close() }

// labelsCopy snapshots the label table (persistence).
func (d *Dynamic) labelsCopy() map[int]string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[int]string, len(d.labels))
	for k, v := range d.labels {
		out[k] = v
	}
	return out
}
