package qdcbir

import (
	"context"
	"fmt"

	"qdcbir/internal/core"
	"qdcbir/internal/feature"
	"qdcbir/internal/rstar"
	"qdcbir/internal/vec"
)

// Session is one relevance-feedback interaction following the paper's
// protocol: browse representative images, mark the relevant ones, repeat —
// the query silently decomposes into localized subqueries — then Finalize
// runs the localized k-NN subqueries and merges their results.
type Session struct {
	sys     *System
	inner   *core.Session
	weights vec.Vector // accumulated family multipliers, lazily initialized
}

// Candidate is one displayable representative image.
type Candidate struct {
	// ID is the image.
	ID int
	// Subconcept is the ground-truth label (synthetic corpora ship labels;
	// a real deployment would render the image instead).
	Subconcept string
}

// Candidates returns the next display of representative images, drawn from
// the current subquery frontier. Call repeatedly to browse (the prototype's
// "Random" button).
func (s *Session) Candidates() []Candidate {
	cands := s.inner.Candidates()
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = Candidate{ID: int(c.ID), Subconcept: s.sys.corpus.SubconceptOf(int(c.ID))}
	}
	return out
}

// Feedback marks previously displayed images as relevant. Each mark refines
// the query: the subquery that displayed it descends to the child cluster
// the image came from, splitting the query across clusters as needed.
func (s *Session) Feedback(relevant []int) error {
	ids := make([]rstar.ItemID, len(relevant))
	for i, id := range relevant {
		ids[i] = rstar.ItemID(id)
	}
	return s.inner.Feedback(ids)
}

// Retract removes previously marked images from the query (users change
// their minds; the prototype's interface lets them drag images back out of
// the query panel). Subqueries kept alive only by retracted marks are
// discarded.
func (s *Session) Retract(ids []int) {
	conv := make([]rstar.ItemID, len(ids))
	for i, id := range ids {
		conv[i] = rstar.ItemID(id)
	}
	s.inner.Retract(conv)
}

// WeightFamily applies a user-defined importance multiplier to one feature
// family — the paper's §6 extension ("the user may define color as the most
// important feature"). Multipliers compose across calls; the weighting
// affects the final localized k-NN scoring.
func (s *Session) WeightFamily(family FeatureFamily, multiplier float64) error {
	if multiplier < 0 {
		return fmt.Errorf("qdcbir: negative multiplier %v", multiplier)
	}
	if s.weights == nil {
		s.weights = make(vec.Vector, feature.Dim)
		for i := range s.weights {
			s.weights[i] = 1
		}
	}
	lo, hi := feature.Family(family).Range()
	for i := lo; i < hi; i++ {
		s.weights[i] *= multiplier
	}
	return s.inner.SetFeatureWeights(s.weights)
}

// FeatureFamily selects one of the three visual feature groups for
// WeightFamily.
type FeatureFamily int

// The three feature families of the 37-d vector.
const (
	FamilyColor   = FeatureFamily(feature.FamilyColor)
	FamilyTexture = FeatureFamily(feature.FamilyTexture)
	FamilyEdge    = FeatureFamily(feature.FamilyEdge)
)

// Subqueries returns the number of active localized subqueries (the frontier
// width).
func (s *Session) Subqueries() int { return len(s.inner.Frontier()) }

// Relevant returns all images marked so far.
func (s *Session) Relevant() []int {
	rel := s.inner.Relevant()
	out := make([]int, len(rel))
	for i, id := range rel {
		out[i] = int(id)
	}
	return out
}

// Group is the result of one localized subquery.
type Group struct {
	// Label names the group by the dominant subconcept of its query images
	// (the paper refers to clusters by their representative's semantics).
	Label string
	// QueryImages are the relevant marks that formed the local query.
	QueryImages []int
	// Images are the group's results, most similar first.
	Images []Scored
	// RankScore is the sum of the group's similarity scores; groups are
	// presented in ascending RankScore order (§3.4).
	RankScore float64
	// Expanded reports whether the §3.3 boundary test widened the search to
	// a parent cluster.
	Expanded bool
}

// Result is a finalized query.
type Result struct {
	Groups []Group
}

// Finalize runs the final localized multipoint k-NN subqueries and merges
// their results into k images total, allocated to subqueries proportionally
// to their relevant counts. The session accepts no further feedback.
func (s *Session) Finalize(k int) (*Result, error) {
	return s.FinalizeContext(context.Background(), k)
}

// FinalizeContext is Finalize with cancellation: the localized k-NN
// subqueries poll ctx and abort early when it is done. A cancelled Finalize
// still consumes the session (no further feedback is accepted).
func (s *Session) FinalizeContext(ctx context.Context, k int) (*Result, error) {
	res, err := s.inner.FinalizeCtx(ctx, k)
	if err != nil {
		return nil, err
	}
	out := &Result{}
	for _, g := range res.Groups {
		grp := Group{
			RankScore: g.RankScore,
			Expanded:  g.SearchNode != g.Node,
		}
		counts := map[string]int{}
		for _, id := range g.QueryIDs {
			grp.QueryImages = append(grp.QueryImages, int(id))
			counts[s.sys.corpus.SubconceptOf(int(id))]++
		}
		best, bestN := "", 0
		for sub, n := range counts {
			if n > bestN || (n == bestN && sub < best) {
				best, bestN = sub, n
			}
		}
		grp.Label = best
		for _, im := range g.Images {
			grp.Images = append(grp.Images, Scored{ID: int(im.ID), Score: im.Score})
		}
		out.Groups = append(out.Groups, grp)
	}
	return out, nil
}

// Stats reports the session's simulated I/O cost, split as the paper's
// scalability argument splits it: feedback processing (client-side, touches
// only representatives) vs the final localized k-NN (server-side).
type Stats struct {
	FeedbackReads uint64
	FinalReads    uint64
	Expansions    int
	Rounds        int
}

// Stats returns the session's accumulated statistics.
func (s *Session) Stats() Stats {
	st := s.inner.Stats()
	return Stats{
		FeedbackReads: st.FeedbackReads,
		FinalReads:    st.FinalReads,
		Expansions:    st.Expansions,
		Rounds:        st.Rounds,
	}
}

// IDs returns the result image IDs in presentation order (groups by rank,
// images by score).
func (r *Result) IDs() []int {
	var out []int
	for _, g := range r.Groups {
		for _, im := range g.Images {
			out = append(out, im.ID)
		}
	}
	return out
}

// Flat returns all result images as one list ranked by similarity score.
func (r *Result) Flat() []Scored {
	var out []Scored
	for _, g := range r.Groups {
		out = append(out, g.Images...)
	}
	// Insertion sort keeps this dependency-free; result sets are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Score < out[j-1].Score ||
			(out[j].Score == out[j-1].Score && out[j].ID < out[j-1].ID)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
