package qdcbir

import (
	"reflect"
	"testing"
	"time"

	"qdcbir/internal/obs"
)

// TestSystemQuantizedMatchesExact builds the same corpus twice — exact and
// quantized — and checks global k-NN and full feedback sessions return
// identical results: the SQ8 scan is an execution strategy, not a different
// answer.
func TestSystemQuantizedMatchesExact(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 600
	exact, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Quantized = true
	quant, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !quant.Quantized() || exact.Quantized() {
		t.Fatalf("quantized flags wrong: exact=%v quant=%v", exact.Quantized(), quant.Quantized())
	}
	for _, example := range []int{0, 17, 256, 599} {
		for _, k := range []int{1, 10, 50} {
			a, b := knnIDs(t, exact, example, k), knnIDs(t, quant, example, k)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("k-NN diverged (example %d, k %d): %v vs %v", example, k, a, b)
			}
		}
	}
	// Full feedback sessions agree too (the finalize phase runs localized
	// subqueries through the quantized path).
	runIDs := func(s *System) []int {
		sess := s.NewSession(321)
		c := sess.Candidates()
		if err := sess.Feedback([]int{c[0].ID, c[1].ID, c[3].ID}); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Finalize(20)
		if err != nil {
			t.Fatal(err)
		}
		return res.IDs()
	}
	if a, b := runIDs(exact), runIDs(quant); !reflect.DeepEqual(a, b) {
		t.Fatalf("session results diverged: %v vs %v", a, b)
	}
}

// TestSystemQuantizedObserved checks the observed quantized k-NN path feeds
// the per-phase digests and keeps the KNN counter in step.
func TestSystemQuantizedObserved(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 400
	cfg.Quantized = true
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(nil)
	observed := sys.WithObserver(o)
	if !observed.Quantized() {
		t.Fatal("WithObserver dropped the quantizer")
	}
	if _, err := observed.KNN(5, 12); err != nil {
		t.Fatal(err)
	}
	if got := o.Registry().Snapshot().Counters[obs.MetricKNNs]; got != 1 {
		t.Fatalf("knn counter = %d, want 1", got)
	}
	scan := o.Windows().Digest(obs.DigestKNNScan).Snapshot(time.Minute)
	if scan.Count != 1 {
		t.Fatalf("knn_scan digest count = %d, want 1", scan.Count)
	}
	rerank := o.Windows().Digest(obs.DigestKNNRerank).Snapshot(time.Minute)
	if rerank.Count != 1 {
		t.Fatalf("knn_rerank digest count = %d, want 1", rerank.Count)
	}
}
