package qdcbir

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := smallSystem(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("len %d != %d", loaded.Len(), orig.Len())
	}
	if loaded.TreeHeight() != orig.TreeHeight() || loaded.RepresentativeCount() != orig.RepresentativeCount() {
		t.Errorf("structure shape changed: h %d/%d reps %d/%d",
			loaded.TreeHeight(), orig.TreeHeight(),
			loaded.RepresentativeCount(), orig.RepresentativeCount())
	}
	// Ground truth survives.
	for i := 0; i < 20; i++ {
		if loaded.SubconceptOf(i) != orig.SubconceptOf(i) {
			t.Fatalf("label %d changed: %q vs %q", i, loaded.SubconceptOf(i), orig.SubconceptOf(i))
		}
	}
	// Retrieval behaviour is identical.
	a, err := orig.KNN(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.KNN(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("kNN diverged at rank %d: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
	// Sessions replay identically across the reload.
	runIDs := func(s *System) []int {
		sess := s.NewSession(123)
		c := sess.Candidates()
		if err := sess.Feedback([]int{c[0].ID, c[1].ID}); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Finalize(8)
		if err != nil {
			t.Fatal(err)
		}
		return res.IDs()
	}
	x, y := runIDs(orig), runIDs(loaded)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("session replay diverged at %d", i)
		}
	}
	// The extractor survives: external QBE still works after reload.
	if loaded.Corpus().Extractor == nil {
		t.Fatal("extractor lost in round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	sys := smallSystem(t)
	path := filepath.Join(t.TempDir(), "sys.gob")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != sys.Len() {
		t.Fatalf("len %d != %d", loaded.Len(), sys.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadVectorMode(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 500
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != sys.Len() {
		t.Fatalf("len %d != %d", loaded.Len(), sys.Len())
	}
	// Vector-mode systems have no extractor before or after.
	if loaded.Corpus().Extractor != nil {
		t.Error("vector-mode load grew an extractor")
	}
}
