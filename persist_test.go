package qdcbir

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := smallSystem(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("len %d != %d", loaded.Len(), orig.Len())
	}
	if loaded.TreeHeight() != orig.TreeHeight() || loaded.RepresentativeCount() != orig.RepresentativeCount() {
		t.Errorf("structure shape changed: h %d/%d reps %d/%d",
			loaded.TreeHeight(), orig.TreeHeight(),
			loaded.RepresentativeCount(), orig.RepresentativeCount())
	}
	// Ground truth survives.
	for i := 0; i < 20; i++ {
		if loaded.SubconceptOf(i) != orig.SubconceptOf(i) {
			t.Fatalf("label %d changed: %q vs %q", i, loaded.SubconceptOf(i), orig.SubconceptOf(i))
		}
	}
	// Retrieval behaviour is identical.
	a, err := orig.KNN(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.KNN(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("kNN diverged at rank %d: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
	// Sessions replay identically across the reload.
	runIDs := func(s *System) []int {
		sess := s.NewSession(123)
		c := sess.Candidates()
		if err := sess.Feedback([]int{c[0].ID, c[1].ID}); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Finalize(8)
		if err != nil {
			t.Fatal(err)
		}
		return res.IDs()
	}
	x, y := runIDs(orig), runIDs(loaded)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("session replay diverged at %d", i)
		}
	}
	// The extractor survives: external QBE still works after reload.
	if loaded.Corpus().Extractor == nil {
		t.Fatal("extractor lost in round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	sys := smallSystem(t)
	path := filepath.Join(t.TempDir(), "sys.gob")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != sys.Len() {
		t.Fatalf("len %d != %d", loaded.Len(), sys.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestArchiveFormat pins the store-backed wire format: the versioned magic
// header, the size win over the version-0 encoding of the same system
// (points stored once instead of twice, original channel aliased instead of
// duplicated), and byte-identical retrieval — including simulated I/O
// counts — across the round trip. It uses a channel-bearing corpus so the
// channel dedup path is exercised.
func TestArchiveFormat(t *testing.T) {
	cfg := Config{Seed: 7, Categories: 8, Images: 240, NodeCapacity: 24, RepFraction: 0.2, WithChannels: true}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), archiveHeader(archiveVersionV3)) {
		t.Fatalf("archive does not start with the v3 magic: % x", buf.Bytes()[:8])
	}

	// The version-0 encoding of the same system, for the size comparison.
	legacy := archive{
		Cfg:            sys.cfg,
		Infos:          sys.corpus.Infos,
		RFS:            sys.rfs.Snapshot(),
		ChannelVectors: sys.corpus.ChannelVectors,
	}
	if sys.corpus.Extractor != nil {
		legacy.NormMin, legacy.NormMax = sys.corpus.Extractor.NormalizerBounds()
	}
	var legacyBuf bytes.Buffer
	if err := gob.NewEncoder(&legacyBuf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	// With four channels the v0 encoding carries six vector tables (snapshot
	// points, tree leaf items, four channels) against v1's four backing
	// arrays, so the expected ratio is about 2/3; channel-less archives drop
	// to about 1/2.
	if ratio := float64(buf.Len()) / float64(legacyBuf.Len()); ratio > 0.70 {
		t.Errorf("v1 archive is %d bytes, %.0f%% of the v0 encoding (%d bytes); want ≤70%%",
			buf.Len(), 100*ratio, legacyBuf.Len())
	}

	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The loaded original channel aliases the corpus store rather than
	// carrying its own copy.
	lc := loaded.Corpus()
	if &lc.ChannelVectors[0][0][0] != &lc.Vectors[0][0] {
		t.Error("loaded original channel is not an alias of the corpus vectors")
	}

	// Retrieval and simulated I/O are identical across the round trip.
	run := func(s *System) ([]int, Stats) {
		sess := s.NewSession(77)
		c := sess.Candidates()
		if err := sess.Feedback([]int{c[0].ID, c[2].ID, c[4].ID}); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Finalize(25)
		if err != nil {
			t.Fatal(err)
		}
		return res.IDs(), sess.Stats()
	}
	aIDs, aStats := run(sys)
	bIDs, bStats := run(loaded)
	if len(aIDs) != len(bIDs) {
		t.Fatalf("result sizes differ: %d vs %d", len(aIDs), len(bIDs))
	}
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			t.Fatalf("round-trip results diverged at rank %d: %d vs %d", i, aIDs[i], bIDs[i])
		}
	}
	if aStats != bStats {
		t.Fatalf("round-trip I/O diverged: %+v vs %+v", aStats, bStats)
	}
}

func TestSaveLoadVectorMode(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 500
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != sys.Len() {
		t.Fatalf("len %d != %d", loaded.Len(), sys.Len())
	}
	// Vector-mode systems have no extractor before or after.
	if loaded.Corpus().Extractor != nil {
		t.Error("vector-mode load grew an extractor")
	}
}
