package qdcbir

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qdcbir/internal/vec"
)

func dynTestConfig(mode string) DynamicConfig {
	cfg := DynamicConfig{
		Dim:                6,
		SealThreshold:      20,
		MaxSegments:        3,
		Seed:               9,
		NodeCapacity:       8,
		DisableAutoCompact: true,
	}
	switch mode {
	case "sq8":
		cfg.Quantized = true
		cfg.RerankFactor = 3
	case "f32":
		cfg.Float32 = true
	}
	return cfg
}

func dynRandVec(rng *rand.Rand, dim int) vec.Vector {
	v := make(vec.Vector, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// populateDynamic inserts labeled rows (with occasional exact duplicates for
// tie stress) and deletes a fifth of them, leaving multiple sealed segments,
// a non-empty memtable, and tombstones in both.
func populateDynamic(t *testing.T, d *Dynamic) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	var ids []int
	var last vec.Vector
	for i := 0; i < 110; i++ {
		v := dynRandVec(rng, d.cfg.Dim)
		if last != nil && i%9 == 0 {
			copy(v, last)
		}
		last = v
		id, err := d.Insert(v, fmt.Sprintf("img-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:len(ids)/5] {
		if err := d.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
}

func sameDynamicAnswers(t *testing.T, label string, a, b *Dynamic) {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 5; i++ {
		q := dynRandVec(rng, a.cfg.Dim)
		got, err := b.KNN(ctx, q, 17)
		if err != nil {
			t.Fatal(err)
		}
		want, err := a.KNN(ctx, q, 17)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: query %d: %d results, want %d", label, i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: query %d rank %d: got %+v, want %+v", label, i, j, got[j], want[j])
			}
		}
	}
	snap := a.db.Acquire()
	examples := snap.LiveIDs(nil)[:6]
	snap.Release()
	got, err := b.QueryByExamples(ctx, examples, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.QueryByExamples(ctx, examples, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	gi, wi := got.IDs(), want.IDs()
	if len(gi) != len(wi) {
		t.Fatalf("%s: finalize: %d ids, want %d", label, len(gi), len(wi))
	}
	for i := range wi {
		if gi[i] != wi[i] {
			t.Fatalf("%s: finalize rank %d: got %d, want %d", label, i, gi[i], wi[i])
		}
	}
}

func TestDynamicSaveLoadRoundTrip(t *testing.T) {
	for _, mode := range []string{"f64", "sq8", "f32"} {
		t.Run(mode, func(t *testing.T) {
			d, err := NewDynamic(dynTestConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			populateDynamic(t, d)
			before := d.Stats()
			if before.Segments < 2 || before.MemRows == 0 || before.Tombstones == 0 {
				t.Fatalf("fixture not exercising all layers: %+v", before)
			}

			var buf bytes.Buffer
			if err := d.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if v, ok := ArchiveHeaderVersion(buf.Bytes()); !ok || v != DynamicArchiveVersion {
				t.Fatalf("archive header version %d (%v), want %d", v, ok, DynamicArchiveVersion)
			}
			loaded, err := LoadDynamic(&buf, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer loaded.Close()

			after := loaded.Stats()
			if after.Epoch != before.Epoch || after.Segments != before.Segments ||
				after.MemRows != before.MemRows || after.Tombstones != before.Tombstones ||
				after.Live != before.Live || after.NextID != before.NextID {
				t.Fatalf("stats diverged:\n before %+v\n after  %+v", before, after)
			}
			sameDynamicAnswers(t, mode, d, loaded)

			// Labels survive, and only for live images.
			snap := d.db.Acquire()
			live := snap.LiveIDs(nil)
			snap.Release()
			for _, id := range live {
				if got, want := loaded.LabelOf(id), d.LabelOf(id); got != want {
					t.Fatalf("label of %d: %q, want %q", id, got, want)
				}
			}

			// The restored engine keeps ingesting: new IDs continue past the
			// saved allocator, and the row is immediately queryable.
			id, err := loaded.Insert(dynRandVec(rand.New(rand.NewSource(5)), loaded.cfg.Dim), "post-load")
			if err != nil {
				t.Fatal(err)
			}
			if id != before.NextID {
				t.Fatalf("post-load insert got ID %d, want %d", id, before.NextID)
			}
			if loaded.LabelOf(id) != "post-load" {
				t.Fatal("post-load label missing")
			}
		})
	}
}

func TestLoadDynamicAdoptsStaticArchive(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 400
	cfg.Categories = 10
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDynamic(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	st := d.Stats()
	if st.Segments != 1 || st.Live != sys.Len() || st.NextID != sys.Len() {
		t.Fatalf("adopted stats %+v for corpus of %d", st, sys.Len())
	}
	// The adopted segment shares the System's store and tree, so a KNN from a
	// corpus row must return exactly the monolithic system's answer.
	q := sys.Corpus().Store().At(7)
	want, err := sys.KNN(7, 12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.KNN(context.Background(), q, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("adopted KNN rank %d: got %d, want %d", i, got[i].ID, want[i].ID)
		}
	}
	if d.LabelOf(7) != sys.SubconceptOf(7) {
		t.Fatalf("adopted label %q, want subconcept %q", d.LabelOf(7), sys.SubconceptOf(7))
	}
	// Ingest continues on top of the adopted corpus.
	if _, err := d.Insert(dynRandVec(rand.New(rand.NewSource(3)), d.cfg.Dim), "new"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(7); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Live != sys.Len() {
		t.Fatalf("live %d after one insert and one delete, want %d", d.Stats().Live, sys.Len())
	}
}

func TestStaticLoadRejectsDynamicArchive(t *testing.T) {
	d, err := NewDynamic(dynTestConfig("f64"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Insert(make(vec.Vector, d.cfg.Dim), "only"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "LoadDynamic") {
		t.Fatalf("static Load of a dynamic archive: err = %v, want LoadDynamic pointer", err)
	}
}
