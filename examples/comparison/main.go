// Comparison runs one query ("Car": modern sedans, antique cars, steam cars)
// through query decomposition and every baseline the paper discusses —
// Multiple Viewpoints, query point movement, the MARS multipoint query, the
// Qcluster-style disjunctive query, and plain k-NN — and prints a
// side-by-side scorecard of precision and ground-truth inclusion ratio.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"qdcbir"
	"qdcbir/internal/baseline"
	"qdcbir/internal/metrics"
	"qdcbir/internal/user"
)

func main() {
	cfg := qdcbir.SmallConfig()
	cfg.WithChannels = true // the MV baseline needs the four colour channels
	sys, err := qdcbir.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var q qdcbir.Query
	for _, cand := range sys.Queries() {
		if cand.Name == "Car" {
			q = cand
		}
	}
	rel := sys.GroundTruth(q)
	k := sys.GroundTruthSize(q)
	fmt.Printf("query %q: %d relevant images in %d scattered subconcepts, retrieving k=%d\n\n",
		q.Name, len(rel), len(q.Targets), k)

	const rounds = 3
	corpus := sys.Corpus()

	// --- Query Decomposition ---
	targets := map[string]bool{}
	for _, t := range q.Targets {
		targets[t] = true
	}
	sess := sys.NewSession(11)
	for round := 0; round < rounds; round++ {
		var marks []int
		seen := map[int]bool{}
		for d := 0; d < 15 && len(marks) < 8; d++ {
			for _, c := range sess.Candidates() {
				if !seen[c.ID] && targets[c.Subconcept] && len(marks) < 8 {
					seen[c.ID] = true
					marks = append(marks, c.ID)
				}
			}
		}
		if err := sess.Feedback(marks); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sess.Finalize(k)
	if err != nil {
		log.Fatal(err)
	}
	report("QD (this paper)", res.IDs(), rel, q, sys)

	// --- Baselines, all driven by the same simulated user model ---
	initial := corpus.SubconceptIDs(q.Targets[0])[0] // one example sedan
	mv, err := baseline.NewMVChannels(corpus.ChannelStores(), initial)
	if err != nil {
		log.Fatal(err)
	}
	retrievers := []baseline.FeedbackRetriever{
		mv,
		baseline.NewQPM(corpus.Store(), initial),
		baseline.NewMPQ(corpus.Store(), initial, 5, rand.New(rand.NewSource(12))),
		baseline.NewQcluster(corpus.Store(), initial, 5, rand.New(rand.NewSource(12))),
		baseline.NewPlainKNN(corpus.Store(), initial),
	}
	for _, r := range retrievers {
		sim := user.New(q.Targets, corpus.SubconceptOf, rand.New(rand.NewSource(13)))
		var ids []int
		for round := 0; round < rounds; round++ {
			ids = r.Search(k)
			if round < rounds-1 {
				sim.MaxPerRound = 8
				r.Feedback(sim.Select(ids))
			}
		}
		report(r.Name(), ids, rel, q, sys)
	}

	fmt.Println("\nReading the scorecard: every baseline refines a single query contour, so it")
	fmt.Println("covers at most the subconcepts adjacent to its contour; QD splits the query")
	fmt.Println("and retrieves each scattered subconcept from its own cluster (Table 1's shape).")
}

func report(name string, ids []int, rel map[int]bool, q qdcbir.Query, sys *qdcbir.System) {
	g := metrics.GTIR(ids, q.Targets, sys.Corpus().SubconceptOf)
	covered := metrics.CoveredSubconcepts(ids, q.Targets, sys.Corpus().SubconceptOf)
	short := make([]string, len(covered))
	for i, c := range covered {
		short[i] = c[strings.IndexByte(c, '/')+1:]
	}
	fmt.Printf("%-18s precision %.2f   GTIR %.2f   covers: %s\n",
		name, metrics.Precision(ids, rel), g, strings.Join(short, ", "))
}
