// Quickstart: build a small synthetic image database, run one relevance-
// feedback session for "bird" images, and print the grouped results.
//
// The session follows the paper's protocol end to end: browse representative
// images from the RFS root, mark the relevant ones, let the query decompose
// across clusters over three rounds, then finalize with localized k-NN.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"qdcbir"
)

func main() {
	sys, err := qdcbir.Build(qdcbir.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d images, RFS height %d, %d representative images\n\n",
		sys.Len(), sys.TreeHeight(), sys.RepresentativeCount())

	// Intent: bird images — eagles, owls, and sparrows look nothing alike,
	// so their feature vectors live in three separate clusters.
	wanted := map[string]bool{
		"bird/eagle":   true,
		"bird/owl":     true,
		"bird/sparrow": true,
	}

	sess := sys.NewSession(42)
	for round := 1; round <= 3; round++ {
		// Browse a few displays per round (the prototype's "Random" button)
		// and mark every bird representative we see, up to a small budget.
		var marks []int
		seen := map[int]bool{}
		for display := 0; display < 12 && len(marks) < 8; display++ {
			for _, c := range sess.Candidates() {
				if !seen[c.ID] && wanted[c.Subconcept] && len(marks) < 8 {
					seen[c.ID] = true
					marks = append(marks, c.ID)
				}
			}
		}
		if err := sess.Feedback(marks); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: marked %d birds -> %d active subqueries\n",
			round, len(marks), sess.Subqueries())
	}

	res, err := sess.Finalize(24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal result: %d groups (one per discovered neighborhood)\n", len(res.Groups))
	for i, g := range res.Groups {
		var labels []string
		for _, im := range g.Images {
			labels = append(labels, short(sys.SubconceptOf(im.ID)))
		}
		exp := ""
		if g.Expanded {
			exp = " [search expanded to parent cluster]"
		}
		fmt.Printf("  group %d %-16s rank %.3f%s\n    %s\n",
			i+1, short(g.Label), g.RankScore, exp, strings.Join(labels, " "))
	}

	// Contrast with the traditional single-neighborhood k-NN from one
	// example image: it stays inside one bird cluster.
	example := res.Groups[0].QueryImages[0]
	knn, err := sys.KNN(example, 24)
	if err != nil {
		log.Fatal(err)
	}
	kinds := map[string]int{}
	for _, s := range knn {
		kinds[short(sys.SubconceptOf(s.ID))]++
	}
	fmt.Printf("\nplain kNN from one example (%s) for contrast: %v\n",
		short(sys.SubconceptOf(example)), kinds)
}

func short(label string) string {
	if i := strings.IndexByte(label, '/'); i >= 0 {
		return label[i+1:]
	}
	return label
}
