// Birds walks through the paper's Figure-3 scenario step by step: a user
// searching for "bird" discovers that eagles, sparrows, and owls occupy
// distant feature-space clusters, watches the query split into three
// localized subqueries, and receives the results grouped and ranked exactly
// as the prototype screenshot shows (eagle / sparrow / owl groups ordered by
// ranking score).
//
//	go run ./examples/birds
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"

	"qdcbir"
)

func main() {
	sys, err := qdcbir.Build(qdcbir.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}

	var birdQuery qdcbir.Query
	for _, q := range sys.Queries() {
		if q.Name == "Bird" {
			birdQuery = q
		}
	}
	fmt.Printf("query %q — ground truth: %d images across %d subconcepts\n",
		birdQuery.Name, sys.GroundTruthSize(birdQuery), len(birdQuery.Targets))

	targets := map[string]bool{}
	for _, t := range birdQuery.Targets {
		targets[t] = true
	}

	rng := rand.New(rand.NewSource(7))
	sess := sys.NewSession(7)
	for round := 1; round <= 3; round++ {
		fmt.Printf("\n— round %d —\n", round)
		// Browse displays; report what the user sees and marks.
		var marks []int
		kindSeen := map[string]bool{}
		seen := map[int]bool{}
		for display := 0; display < 15 && len(marks) < 8; display++ {
			for _, c := range sess.Candidates() {
				if seen[c.ID] || !targets[c.Subconcept] || len(marks) >= 8 {
					continue
				}
				seen[c.ID] = true
				marks = append(marks, c.ID)
				if !kindSeen[c.Subconcept] {
					kindSeen[c.Subconcept] = true
					fmt.Printf("  spotted a %s (image %d)\n", short(c.Subconcept), c.ID)
				}
			}
		}
		// Shuffle the marks so feedback order is not label-grouped, like a
		// person clicking around the grid.
		rng.Shuffle(len(marks), func(i, j int) { marks[i], marks[j] = marks[j], marks[i] })
		if err := sess.Feedback(marks); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  feedback: %d marks -> query decomposed into %d subqueries\n",
			len(marks), sess.Subqueries())
	}

	k := sys.GroundTruthSize(birdQuery)
	res, err := sess.Finalize(k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n=== results: %d groups, presented by ranking score (§3.4) ===\n", len(res.Groups))
	rel := sys.GroundTruth(birdQuery)
	var hits, total int
	for i, g := range res.Groups {
		counts := map[string]int{}
		for _, im := range g.Images {
			counts[short(sys.SubconceptOf(im.ID))]++
			total++
			if rel[im.ID] {
				hits++
			}
		}
		fmt.Printf("group %d — %-10s rank score %.3f, composition %s\n",
			i+1, short(g.Label), g.RankScore, fmtCounts(counts))
	}
	precision := float64(hits) / float64(total)
	fmt.Printf("\nprecision %.2f over %d retrieved (= recall: retrieval size equals ground truth)\n",
		precision, total)

	covered := map[string]bool{}
	for _, g := range res.Groups {
		for _, im := range g.Images {
			if targets[sys.SubconceptOf(im.ID)] {
				covered[sys.SubconceptOf(im.ID)] = true
			}
		}
	}
	fmt.Printf("GTIR %d/%d — every bird type retrieved despite living in distant clusters\n",
		len(covered), len(birdQuery.Targets))

	// Session cost, the paper's efficiency story: feedback touched only RFS
	// representatives; k-NN ran only at the end, inside small subclusters.
	st := sess.Stats()
	fmt.Printf("\ncost: %d node reads across %d feedback rounds, %d node reads for the final localized k-NN\n",
		st.FeedbackReads, st.Rounds, st.FinalReads)
}

func short(label string) string {
	if i := strings.IndexByte(label, '/'); i >= 0 {
		return label[i+1:]
	}
	return label
}

func fmtCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
