// Video demonstrates the paper's §6 video-retrieval extension: synthetic
// clips are segmented into shots, each shot's keyframe is indexed in the RFS
// structure, and query decomposition retrieves visually similar shots across
// the whole library — including shots whose subject looks completely
// different from the example (the multi-neighborhood property carried over
// to video).
//
//	go run ./examples/video
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qdcbir/internal/dataset"
	"qdcbir/internal/img"
	"qdcbir/internal/rstar"
	"qdcbir/internal/video"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// Six recurring "scenes" (appearances); every clip cuts between two of
	// them, so each scene appears in several clips.
	spec := dataset.SmallSpec(2, 15, 60)
	var scenes []dataset.Appearance
	for _, cat := range spec.Categories {
		for _, sub := range cat.Subconcepts {
			scenes = append(scenes, sub.Appearance)
			if len(scenes) == 6 {
				break
			}
		}
		if len(scenes) == 6 {
			break
		}
	}

	var clips []video.Clip
	for i := 0; i < 15; i++ {
		a, b := scenes[i%6], scenes[(i+2)%6]
		var frames []*img.Image
		for f := 0; f < 9; f++ {
			frames = append(frames, dataset.Render(a, rng))
		}
		for f := 0; f < 9; f++ {
			frames = append(frames, dataset.Render(b, rng))
		}
		clips = append(clips, video.Clip{ID: i, Frames: frames})
	}

	lib, err := video.BuildLibrary(clips, video.LibraryConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d clips -> %d shots (keyframes indexed in the RFS structure)\n\n",
		len(clips), lib.Shots())

	// Query by example: find shots similar to shot 0 and shot 1 (two
	// different scenes of clip 0) — the query decomposes into one subquery
	// per scene.
	examples := []rstar.ItemID{0, 1}
	for _, ex := range examples {
		sh, _ := lib.Shot(ex)
		fmt.Printf("example shot %d: clip %d frames [%d,%d)\n", ex, sh.Clip, sh.Start, sh.End)
	}
	got, err := lib.SearchByShots(examples, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nretrieved shots (clip/shot, frame span):")
	clipsHit := map[int]bool{}
	for _, sh := range got {
		fmt.Printf("  clip %2d shot %d  frames [%2d,%2d)\n", sh.Clip, sh.Index, sh.Start, sh.End)
		clipsHit[sh.Clip] = true
	}
	fmt.Printf("\nthe two scenes were found across %d distinct clips — multi-neighborhood\n", len(clipsHit))
	fmt.Println("retrieval over video, with no per-round k-NN during feedback.")
}
