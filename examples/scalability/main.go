// Scalability demonstrates the paper's client/server argument (§4, §6):
// relevance feedback needs only the representative images — about 5% of the
// database — so the interactive rounds can run on the client, and the server
// is touched once, for the small localized k-NN subqueries.
//
// The program simulates the split at several database sizes: it measures the
// bytes a client would download (the representative set), the simulated I/O
// of feedback processing versus traditional per-round global k-NN, and the
// final server-side cost.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"math/rand"
	"time"

	"qdcbir"
	"qdcbir/internal/baseline"
	"qdcbir/internal/disk"
	"qdcbir/internal/user"
)

func main() {
	fmt.Println("client/server split under the QD model (vector-mode corpora)")
	fmt.Printf("%8s | %10s | %14s | %18s | %18s\n",
		"DB size", "reps (5%)", "client payload", "QD feedback reads", "global kNN reads/rnd")
	fmt.Println(strings76)

	for _, size := range []int{1000, 4000, 16000} {
		cfg := qdcbir.Config{
			Seed:       1,
			Categories: 30,
			Images:     size,
			VectorMode: true,
		}
		sys, err := qdcbir.Build(cfg)
		if err != nil {
			fmt.Println("build:", err)
			return
		}
		reps := sys.RepresentativeCount()
		// Client payload: each representative is a 37-d float64 vector plus
		// an 8-byte ID — what the paper proposes shipping to the client.
		payload := reps * (37*8 + 8)

		// One simulated session per corpus; average over a few queries.
		corpus := sys.Corpus()
		subs := corpus.Subconcepts()
		rng := rand.New(rand.NewSource(2))
		var fbReads, gReads uint64
		var sessions int
		for trial := 0; trial < 10; trial++ {
			target := subs[rng.Intn(len(subs))]
			sim := user.New([]string{target}, corpus.SubconceptOf, rng)
			sess := sys.NewSession(int64(trial))
			ok := false
			for round := 0; round < 2; round++ {
				var shown []int
				for d := 0; d < 10; d++ {
					for _, c := range sess.Candidates() {
						shown = append(shown, c.ID)
					}
				}
				sim.MaxPerRound = 6
				marks := sim.SelectDiverse(shown)
				if len(marks) > 0 {
					ok = true
				}
				if err := sess.Feedback(marks); err != nil {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if _, err := sess.Finalize(30); err != nil {
				continue
			}
			fbReads += sess.Stats().FeedbackReads
			sessions++

			// Traditional feedback: every round is a global k-NN on the
			// server's index.
			var acc disk.Counter
			tk := baseline.NewTreeKNN(sys.RFS().Tree(), corpus.Store(),
				corpus.SubconceptIDs(target)[0], &acc)
			gsim := user.New([]string{target}, corpus.SubconceptOf, rng)
			for round := 0; round < 2; round++ {
				ids := tk.Search(30)
				gsim.MaxPerRound = 6
				tk.Feedback(gsim.Select(ids))
			}
			gReads += acc.Reads() / 2 // per round
		}
		if sessions == 0 {
			fmt.Printf("%8d | (no session completed)\n", size)
			continue
		}
		fmt.Printf("%8d | %10d | %11.1f KB | %18.1f | %18.1f\n",
			sys.Len(), reps, float64(payload)/1024,
			float64(fbReads)/float64(sessions), float64(gReads)/float64(sessions))
	}

	fmt.Println("\nThe QD feedback column counts server pages a thin client would need if it did")
	fmt.Println("NOT cache the representative set; shipping the payload once drops it to zero,")
	fmt.Println("while traditional relevance feedback pays the global-kNN column every round.")
	_ = time.Now
}

const strings76 = "---------------------------------------------------------------------------"
