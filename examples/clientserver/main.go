// Clientserver demonstrates the paper's §4 scalability architecture end to
// end, in one process: an HTTP server hosts the database; a client downloads
// the representative payload (a small fraction of the database), runs the
// whole relevance-feedback loop locally, and contacts the server exactly once
// — to execute the final localized k-NN subqueries.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"qdcbir"
	"qdcbir/internal/core"
	"qdcbir/internal/server"
)

func main() {
	// --- server side: build and serve a small database ---
	sys, err := qdcbir.Build(qdcbir.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(sys.RFS(), core.Config{})
	srv := server.New(engine, sys.Corpus().SubconceptOf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("server: %d images, %d representatives\n", sys.Len(), sys.RepresentativeCount())

	// --- client side: one payload download, then local feedback ---
	client, err := server.Dial(ts.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: downloaded payload with %d representatives (%.1f%% of the database)\n\n",
		client.RepCount(), 100*float64(client.RepCount())/float64(client.Images()))

	wanted := map[string]bool{
		"horse/polo":       true,
		"horse/wild-horse": true,
		"horse/race":       true,
	}
	sess := client.NewSession(42, 21)
	for round := 1; round <= 3; round++ {
		var marks []int
		seen := map[int]bool{}
		for d := 0; d < 15 && len(marks) < 8; d++ {
			for _, c := range sess.Candidates() { // local, zero server traffic
				if !seen[c.ID] && wanted[c.Label] && len(marks) < 8 {
					seen[c.ID] = true
					marks = append(marks, c.ID)
				}
			}
		}
		if err := sess.Feedback(marks); err != nil { // local descent
			log.Fatal(err)
		}
		fmt.Printf("round %d (client-local): %d marks, %d subqueries\n",
			round, len(marks), sess.Subqueries())
	}

	// The single server round trip.
	res, err := sess.Finalize(24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver executed %d localized subqueries (%d node reads):\n",
		len(res.Groups), res.Stats.FinalReads)
	for i, g := range res.Groups {
		kinds := map[string]int{}
		for _, im := range g.Images {
			kinds[short(im.Label)]++
		}
		fmt.Printf("  group %d: rank %.3f, %v\n", i+1, g.RankScore, kinds)
	}
	fmt.Println("\nEvery feedback round ran on the client against the cached payload;")
	fmt.Println("a traditional CBIR server would have executed a global k-NN per round.")
}

func short(label string) string {
	if i := strings.IndexByte(label, '/'); i >= 0 {
		return label[i+1:]
	}
	return label
}
