package qdcbir

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qdcbir/internal/source"
	"qdcbir/internal/store"
)

// fvecsFixture renders a deterministic clustered embedding set in the .fvecs
// wire format: n vectors of dim float32s around five well-separated centers.
func fvecsFixture(n, dim int) []byte {
	rng := rand.New(rand.NewSource(99))
	buf := make([]byte, 0, n*(4+4*dim))
	var b [4]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(b[:], uint32(int32(dim)))
		buf = append(buf, b[:]...)
		center := float64(i % 5)
		for j := 0; j < dim; j++ {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(center+rng.NormFloat64()*0.1)))
			buf = append(buf, b[:]...)
		}
	}
	return buf
}

// importedF32System builds a Float32 system over the deterministic .fvecs
// fixture through the public import path (file → source → BuildFromSource).
func importedF32System(t *testing.T, n, dim int) *System {
	t.Helper()
	path := filepath.Join(t.TempDir(), "emb.fvecs")
	if err := os.WriteFile(path, fvecsFixture(n, dim), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := source.File(path, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 3, NodeCapacity: 16, RepFraction: 0.2, Float32: true}
	sys, err := BuildFromSource(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildFromSourceFVecs(t *testing.T) {
	sys := importedF32System(t, 300, 12)
	if sys.Len() != 300 {
		t.Fatalf("imported %d vectors, want 300", sys.Len())
	}
	if got := sys.Corpus().Store().Precision(); got != store.Float32 {
		t.Fatalf("store precision %v, want Float32", got)
	}
	if !sys.Config().VectorMode || sys.Config().Images != 300 {
		t.Fatalf("config not rewritten for the import: %+v", sys.Config())
	}
	res, err := sys.KNN(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 || res[0].ID != 5 || res[0].Score != 0 {
		t.Fatalf("self-query: %+v", res[:2])
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score < res[i-1].Score {
			t.Fatalf("scores not ascending at rank %d", i)
		}
	}
	// A full feedback session runs over the imported geometry.
	sess := sys.NewSession(7)
	c := sess.Candidates()
	if err := sess.Feedback([]int{c[0].ID, c[1].ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Finalize(20); err != nil {
		t.Fatal(err)
	}
}

// TestArchiveV3Float32RoundTrip pins the float32 wire format: the archive
// carries the native float32 rows (and no float64 table), the precision tag
// survives, and retrieval is bit-identical across the round trip.
func TestArchiveV3Float32RoundTrip(t *testing.T) {
	sys := importedF32System(t, 250, 9)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), archiveHeader(archiveVersionV3)) {
		t.Fatalf("archive does not start with the v3 magic: % x", buf.Bytes()[:8])
	}
	var a archiveV3
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes()[4:])).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.Precision != "f32" {
		t.Fatalf("persisted precision %q, want f32", a.Precision)
	}
	if a.Points != nil {
		t.Fatalf("float32 archive carries %d float64 points", len(a.Points))
	}
	if len(a.Points32) != 250*9 {
		t.Fatalf("float32 backing holds %d values, want %d", len(a.Points32), 250*9)
	}

	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Corpus().Store().Precision(); got != store.Float32 {
		t.Fatalf("loaded store precision %v, want Float32", got)
	}
	orig, err := sys.KNN(17, 25)
	if err != nil {
		t.Fatal(err)
	}
	back, err := loaded.KNN(17, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatal("float32 retrieval diverged across the round trip")
	}
}

// TestV2UpgradeOnSave: loading a version-2 archive and saving it again must
// produce a version-3 archive that answers identically — the upgrade is a
// pure re-encoding.
func TestV2UpgradeOnSave(t *testing.T) {
	sys := quantSystem(t)
	body := sys.archiveBody()
	parts := sys.quant.Parts()
	v2 := archiveV2{
		Cfg:         body.Cfg,
		Infos:       body.Infos,
		Dim:         body.Dim,
		Points:      body.Points,
		HasChannels: body.HasChannels,
		Channels:    body.Channels,
		RFS:         body.RFS,
		NormMin:     body.NormMin,
		NormMax:     body.NormMax,
		Quant:       &parts,
	}
	var v2buf bytes.Buffer
	v2buf.Write(archiveHeader(archiveVersionV2))
	if err := gob.NewEncoder(&v2buf).Encode(&v2); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(v2buf.Bytes()))
	if err != nil {
		t.Fatalf("v2 archive rejected: %v", err)
	}
	var v3buf bytes.Buffer
	if err := loaded.Save(&v3buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v3buf.Bytes(), archiveHeader(archiveVersionV3)) {
		t.Fatalf("re-save did not upgrade to v3: % x", v3buf.Bytes()[:4])
	}
	var a archiveV3
	if err := gob.NewDecoder(bytes.NewReader(v3buf.Bytes()[4:])).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.Precision != "f64" || a.Points == nil || a.Points32 != nil {
		t.Fatalf("upgraded archive precision %q (f64 points: %t, f32 points: %t), want a pure f64 v3",
			a.Precision, a.Points != nil, a.Points32 != nil)
	}
	upgraded, err := Load(bytes.NewReader(v3buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !upgraded.Quantized() {
		t.Fatal("upgrade dropped the quantizer")
	}
	if !reflect.DeepEqual(knnIDs(t, sys, 11, 15), knnIDs(t, upgraded, 11, 15)) {
		t.Fatal("retrieval diverged across the v2 → v3 upgrade")
	}
}

// goldenV3ArchivePath is the committed v3 float32 fixture; regenerate with
// UPDATE_GOLDEN_ARCHIVE=1.
const goldenV3ArchivePath = "testdata/archive_v3_f32.gob"

// TestGoldenArchiveV3F32 loads a version-3 float32 archive committed to
// testdata, proving on-disk float32 archives survive future code changes.
// The fixture is an imported-.fvecs Float32 system; the test checks the
// header version, the preserved precision, and agreement with a fresh build
// from the same deterministic embedding file.
func TestGoldenArchiveV3F32(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN_ARCHIVE") != "" {
		sys := importedF32System(t, 240, 16)
		if err := os.MkdirAll(filepath.Dir(goldenV3ArchivePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := sys.SaveFile(goldenV3ArchivePath); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenV3ArchivePath)
	}
	raw, err := os.ReadFile(goldenV3ArchivePath)
	if err != nil {
		t.Fatalf("golden fixture missing (set UPDATE_GOLDEN_ARCHIVE=1 to generate): %v", err)
	}
	if !bytes.HasPrefix(raw, archiveHeader(archiveVersionV3)) {
		t.Fatalf("fixture does not start with the v3 magic: % x", raw[:4])
	}
	loaded, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden v3 archive rejected: %v", err)
	}
	if got := loaded.Corpus().Store().Precision(); got != store.Float32 {
		t.Fatalf("fixture store precision %v, want Float32", got)
	}
	if !loaded.Config().Float32 {
		t.Fatal("fixture lost the Float32 config")
	}
	fresh := importedF32System(t, 240, 16)
	if loaded.Len() != fresh.Len() {
		t.Fatalf("fixture corpus size %d, want %d", loaded.Len(), fresh.Len())
	}
	if !reflect.DeepEqual(knnIDs(t, fresh, 9, 12), knnIDs(t, loaded, 9, 12)) {
		t.Fatal("fixture retrieval diverged from a fresh build")
	}
}
