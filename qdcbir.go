// Package qdcbir is a content-based image retrieval (CBIR) engine built on
// the Query Decomposition model of Hua, Yu & Liu (ICDE 2006): instead of
// refining a single k-nearest-neighbor neighborhood, relevance feedback
// decomposes the query into independent localized subqueries — one per
// semantically relevant cluster — and merges their local results, so images
// with the same meaning but very different appearance are all retrieved.
//
// The package bundles everything the paper's prototype contains: a 37-d
// visual feature extractor (colour moments, wavelet texture, edge structure),
// an R*-tree-based Relevance Feedback Support (RFS) structure with k-means
// representative selection, the query decomposition engine, the comparison
// baselines (Multiple Viewpoints, query point movement, MARS multipoint,
// Qcluster-style), a synthetic Corel-like corpus generator, and the harness
// that regenerates every table and figure of the paper's evaluation.
//
// Quickstart:
//
//	sys, err := qdcbir.Build(qdcbir.SmallConfig())
//	sess := sys.NewSession(1)
//	cands := sess.Candidates()              // browse representative images
//	_ = sess.Feedback(pickRelevant(cands))  // mark what you like
//	res, err := sess.Finalize(40)           // localized k-NN + merge
//
// See the examples/ directory for complete programs.
package qdcbir

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"qdcbir/internal/core"
	"qdcbir/internal/dataset"
	"qdcbir/internal/disk"
	"qdcbir/internal/feature"
	"qdcbir/internal/img"
	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/source"
	"qdcbir/internal/store"
	"qdcbir/internal/vec"
)

// Config controls corpus generation and engine parameters. Zero values take
// the paper's settings via DefaultConfig.
type Config struct {
	// Seed makes the whole system (corpus, clustering, sessions started with
	// a fixed seed) reproducible.
	Seed int64
	// Categories and Images set the synthetic corpus scale (paper: ~150
	// categories, 15,000 images).
	Categories int
	Images     int
	// VectorMode skips rendering: feature vectors are drawn directly from
	// per-subconcept Gaussians. Fast, used for scalability studies; the MV
	// colour channels are unavailable in this mode.
	VectorMode bool
	// WithChannels extracts the four Multiple-Viewpoints colour-channel
	// representations (image mode only); required to run the MV baseline.
	WithChannels bool

	// NodeCapacity is the R*-tree node capacity (paper: 100).
	NodeCapacity int
	// RepFraction is the representative-image fraction (paper: 5%).
	RepFraction float64
	// BoundaryThreshold is the §3.3 search-expansion threshold (paper: 0.4).
	BoundaryThreshold float64
	// DisplayCount is the number of candidates per display (paper GUI: 21).
	DisplayCount int
	// Hierarchy selects the RFS clustering backbone: "str" (default,
	// STR-bulk-loaded R*-tree), "insert" (incremental R* insertion), or
	// "kmeans" (balanced hierarchical k-means; the paper notes any
	// hierarchical clustering works, §3.1).
	Hierarchy string

	// Parallelism bounds the worker pools used for corpus feature
	// extraction, RFS representative selection, STR bulk-load sorting, and
	// the final localized subqueries (<= 0 uses one worker per CPU). Every
	// output — corpus vectors, tree shape, representative sets, query
	// results, simulated I/O counts — is byte-identical at every setting;
	// the knob trades wall-clock time only.
	Parallelism int

	// Quantized enables the SQ8 two-phase scan: leaf sweeps run over 8-bit
	// codes (8x smaller, int-only arithmetic) and a short exact rerank over
	// the float rows restores full precision. Results are bit-identical to
	// the exact path — a distance guarantee is checked per search and the
	// candidate set widens (ultimately to an exact scan) whenever it could
	// fail. Weighted searches always use the exact path. Off by default.
	Quantized bool
	// RerankFactor sets how many quantized candidates (factor * k) feed the
	// exact rerank when Quantized is on (<= 0 uses the default, 4). Higher
	// factors make guarantee fallbacks rarer at the cost of more float
	// distance evaluations per query.
	RerankFactor int

	// Float32 runs unweighted searches at float32 precision: the corpus rows
	// narrow to a float32 mirror once at build time, queries narrow once per
	// search, and the sweeps run the float32 batch kernels (half the memory
	// traffic, twice the SIMD lanes of the float64 path). Unlike Quantized —
	// which is an optimization whose results stay bit-identical to float64 —
	// Float32 is a distinct documented result mode: distances round to
	// float32, so neighbours whose float64 distances differ only below
	// float32 resolution may swap ranks. Within the mode, results are
	// deterministic across platforms, with and without SIMD acceleration.
	// Float32 takes precedence over Quantized; weighted searches always use
	// the exact float64 path. Off by default, and natural for imported
	// float32 embedding corpora (see BuildFromSource), where narrowing loses
	// nothing.
	Float32 bool
}

// DefaultConfig returns the paper's full-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Categories:        150,
		Images:            15000,
		NodeCapacity:      100,
		RepFraction:       0.05,
		BoundaryThreshold: 0.4,
		DisplayCount:      21,
	}
}

// SmallConfig returns a laptop-friendly configuration (~1,200 images) that
// builds in about a second. The representative fraction is raised so
// representatives-per-leaf matches the paper's geometry at the smaller node
// size.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Categories = 25
	c.Images = 1200
	c.NodeCapacity = 24
	c.RepFraction = 0.2
	return c
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Categories <= 0 {
		c.Categories = d.Categories
	}
	if c.Images <= 0 {
		c.Images = d.Images
	}
	if c.NodeCapacity <= 0 {
		c.NodeCapacity = d.NodeCapacity
	}
	if c.RepFraction <= 0 {
		c.RepFraction = d.RepFraction
	}
	if c.BoundaryThreshold <= 0 {
		c.BoundaryThreshold = d.BoundaryThreshold
	}
	if c.DisplayCount <= 0 {
		c.DisplayCount = d.DisplayCount
	}
	if c.Float32 {
		c.Quantized = false // Float32 selects a precision; SQ8 serves the f64 path
	}
	return c
}

// Query is a semantic evaluation query whose ground truth is the union of
// its target subconcepts.
type Query = dataset.Query

// System is a built retrieval system: corpus, RFS structure, and QD engine.
//
// A System is read-only after Build and safe for concurrent use: any number
// of goroutines may run KNN* searches and drive independent Sessions against
// one System simultaneously. An individual Session is NOT goroutine-safe —
// each models one user's interaction and must be confined to one goroutine
// (or externally synchronized, as internal/server does).
type System struct {
	cfg    Config
	corpus *dataset.Corpus
	rfs    *rfs.Structure
	engine *core.Engine
	// quant is the store-ordered SQ8 quantizer when Config.Quantized built
	// one (the tree holds its own slab-ordered copy of the codes); Save
	// embeds it so loaded systems skip retraining.
	quant *store.Quantized
}

// Build generates the synthetic corpus and constructs the RFS structure and
// query decomposition engine over it.
func Build(cfg Config) (*System, error) {
	return BuildContext(context.Background(), cfg)
}

// BuildContext is Build with cancellation: corpus generation, bulk loading,
// and representative selection all poll ctx and abort early when it is done.
// The Config.Parallelism worker pools run inside this call; a returned System
// is always fully constructed.
func BuildContext(ctx context.Context, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	spec := dataset.SmallSpec(cfg.Seed, cfg.Categories, cfg.Images)
	var corpus *dataset.Corpus
	if cfg.VectorMode {
		corpus = dataset.BuildVectors(spec, 37, 0.02, cfg.Seed+1)
	} else {
		var err error
		corpus, err = dataset.BuildCtx(ctx, spec, dataset.Options{
			Seed:         cfg.Seed + 1,
			WithChannels: cfg.WithChannels,
			Parallelism:  cfg.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("qdcbir: corpus: %w", err)
		}
	}
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: corpus: %w", err)
	}
	return assemble(ctx, cfg, corpus)
}

// BuildFromSource constructs a system over externally supplied vectors — an
// embedding file opened with source.File, or any other VectorSource — instead
// of the synthetic corpus generator. The batch's labels (when present) become
// the ground truth; its dimension becomes the system dimension. A float32-
// native batch (.fvecs) pairs naturally with Config.Float32, which then scans
// the imported values untouched.
func BuildFromSource(cfg Config, src source.VectorSource) (*System, error) {
	return BuildFromSourceContext(context.Background(), cfg, src)
}

// BuildFromSourceContext is BuildFromSource with cancellation, which covers
// the RFS construction phases exactly as in BuildContext.
func BuildFromSourceContext(ctx context.Context, cfg Config, src source.VectorSource) (*System, error) {
	cfg = cfg.withDefaults()
	batch, err := src.Vectors()
	if err != nil {
		return nil, fmt.Errorf("qdcbir: import %s: %w", src.Format(), err)
	}
	if err := batch.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: import %s: %w", src.Format(), err)
	}
	var st *store.FeatureStore
	if batch.Data32 != nil {
		st, err = store.FromBacking32(batch.Dim, batch.Data32)
	} else {
		st, err = store.FromBacking(batch.Dim, batch.Data)
	}
	if err != nil {
		return nil, fmt.Errorf("qdcbir: import %s: %w", src.Format(), err)
	}
	corpus, err := dataset.ReassembleStore(batch.Infos(), st)
	if err != nil {
		return nil, fmt.Errorf("qdcbir: corpus: %w", err)
	}
	// The generator knobs don't describe an imported corpus: record what was
	// actually ingested so Config() (and persisted archives) reflect reality.
	// VectorMode is literal — there are no rendered images, no extractor, and
	// no MV colour channels.
	cfg.VectorMode = true
	cfg.Images = corpus.Len()
	cfg.Categories = len(corpus.Categories())
	return assemble(ctx, cfg, corpus)
}

func assemble(ctx context.Context, cfg Config, corpus *dataset.Corpus) (*System, error) {
	structure, err := rfs.BuildStoreCtx(ctx, corpus.Store(), rfs.BuildConfig{
		RepFraction: cfg.RepFraction,
		Tree:        rstar.Config{MaxFill: cfg.NodeCapacity},
		TargetFill:  cfg.NodeCapacity * 93 / 100,
		Hierarchy:   cfg.Hierarchy,
		Seed:        cfg.Seed + 2,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("qdcbir: rfs: %w", err)
	}
	if err := structure.Validate(); err != nil {
		return nil, fmt.Errorf("qdcbir: rfs: %w", err)
	}
	quant := attachQuantizer(&cfg, corpus, structure, nil)
	if cfg.Float32 {
		// One corpus-side narrowing, shared by every scan consumer (the tree
		// mirrors its own slab inside newEngine). For float32-native imported
		// stores this aliases the original data — no copy, no rounding.
		corpus.Store().MaterializeFloat32()
	}
	return &System{cfg: cfg, corpus: corpus, rfs: structure, engine: newEngine(cfg, structure), quant: quant}, nil
}

// attachQuantizer prepares the SQ8 quantizer of a Quantized config: qz (a
// quantizer restored from an archive) is adopted when given, otherwise one
// is trained in store order — the order Save persists. The tree receives a
// slab-ordered copy of the codes. Quantization is a pure optimization: if
// the corpus can't be quantized (e.g. non-finite features) the flag is
// cleared and the system falls back to exact scoring.
func attachQuantizer(cfg *Config, corpus *dataset.Corpus, structure *rfs.Structure, qz *store.Quantized) *store.Quantized {
	if !cfg.Quantized {
		return nil
	}
	var err error
	if qz == nil {
		qz, err = store.Quantize(corpus.Store())
	}
	if err == nil {
		err = structure.AdoptQuantized(qz)
	}
	if err != nil {
		cfg.Quantized = false
		return nil
	}
	return qz
}

// newEngine wires the QD engine for a structure under this configuration.
func newEngine(cfg Config, structure *rfs.Structure) *core.Engine {
	return core.NewEngine(structure, core.Config{
		BoundaryThreshold: cfg.BoundaryThreshold,
		DisplayCount:      cfg.DisplayCount,
		Parallelism:       cfg.Parallelism,
		Quantized:         cfg.Quantized,
		RerankFactor:      cfg.RerankFactor,
		Float32:           cfg.Float32,
	})
}

// WithObserver returns a System sharing this one's corpus and RFS structure
// whose engine reports telemetry (metrics and per-query traces) to o. The
// original System is untouched and stays uninstrumented; the two may be used
// concurrently. Observer lives on the engine rather than on Config so that
// persisted archives (Save/Load gob-encode Config) never capture it.
func (s *System) WithObserver(o *obs.Observer) *System {
	ecfg := s.engine.Config()
	ecfg.Observer = o
	return &System{cfg: s.cfg, corpus: s.corpus, rfs: s.rfs, engine: core.NewEngine(s.rfs, ecfg), quant: s.quant}
}

// Len returns the number of images in the corpus.
func (s *System) Len() int { return s.corpus.Len() }

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// Quantized reports whether the SQ8 two-phase scan is active (Config asked
// for it and the corpus quantized cleanly). Results are identical either
// way; the flag only describes how global k-NN searches execute.
func (s *System) Quantized() bool { return s.quant != nil }

// SubconceptOf returns an image's ground-truth subconcept key
// ("category/subconcept"), or "" for an unknown ID.
func (s *System) SubconceptOf(id int) string { return s.corpus.SubconceptOf(id) }

// CategoryOf returns an image's ground-truth category, or "".
func (s *System) CategoryOf(id int) string { return s.corpus.CategoryOf(id) }

// Queries returns the paper's 11 Table-1 evaluation queries.
func (s *System) Queries() []Query { return dataset.PaperQueries() }

// GroundTruth returns the relevant image set of a query.
func (s *System) GroundTruth(q Query) map[int]bool { return s.corpus.RelevantSet(q) }

// GroundTruthSize returns |GroundTruth(q)|; the paper retrieves exactly this
// many images per query.
func (s *System) GroundTruthSize(q Query) int { return s.corpus.GroundTruthSize(q) }

// RepresentativeCount returns the number of distinct representative images
// in the RFS structure (~RepFraction of the corpus).
func (s *System) RepresentativeCount() int { return s.rfs.RepCount() }

// TreeHeight returns the RFS hierarchy depth (the paper's corpus yields 3).
func (s *System) TreeHeight() int { return s.rfs.Tree().Height() }

// Scored is one retrieved image with its similarity score (Euclidean
// distance to the local query centroid; smaller is more similar).
type Scored struct {
	ID    int
	Score float64
}

// KNN runs a plain global k-nearest-neighbor search from an example image —
// the traditional single-neighborhood retrieval QD improves upon. Useful as
// a baseline and for browsing.
func (s *System) KNN(exampleImage, k int) ([]Scored, error) {
	return s.KNNContext(context.Background(), exampleImage, k)
}

// KNNContext is KNN with cancellation: the search polls ctx and aborts early
// when it is done.
func (s *System) KNNContext(ctx context.Context, exampleImage, k int) ([]Scored, error) {
	if exampleImage < 0 || exampleImage >= s.corpus.Len() {
		return nil, fmt.Errorf("qdcbir: image %d outside corpus of %d", exampleImage, s.corpus.Len())
	}
	return s.searchKNN(ctx, s.corpus.Vectors[exampleImage], k)
}

// searchKNN runs one observed global k-NN search, through the SQ8 two-phase
// scan when the system is quantized and the plain best-first descent
// otherwise; results are identical either way.
func (s *System) searchKNN(ctx context.Context, q vec.Vector, k int) ([]Scored, error) {
	o := s.engine.Config().Observer
	var acc disk.Accounter
	var t0 time.Time
	if o != nil {
		acc = &disk.Counter{}
		t0 = time.Now()
	}
	var ns []rstar.Neighbor
	var err error
	tree := s.rfs.Tree()
	if s.cfg.Float32 {
		ns, err = tree.KNNF32FromStatsCtx(ctx, tree.Root(), q, k, acc, nil)
	} else if s.cfg.Quantized {
		st := rstar.SearchStats{Timed: o != nil}
		ns, err = tree.KNNQuantFromStatsCtx(ctx, tree.Root(), q, k, s.cfg.RerankFactor, acc, &st)
		if err == nil && o != nil {
			o.KNNPhases(st.ScanNS, st.RerankNS, st.RerankFallbacks)
		}
	} else {
		ns, err = tree.KNNCtx(ctx, q, k, acc)
	}
	if err != nil {
		return nil, err
	}
	if o != nil {
		o.KNNDone(time.Since(t0), acc.Reads())
	}
	out := make([]Scored, len(ns))
	for i, n := range ns {
		out[i] = Scored{ID: int(n.ID), Score: n.Dist}
	}
	return out, nil
}

// KNNByImage runs query-by-example with an image from outside the corpus:
// its 37-d features are extracted, normalized against the corpus, and
// searched globally. Requires an image-mode system (vector-mode corpora have
// no feature extractor).
func (s *System) KNNByImage(im *img.Image, k int) ([]Scored, error) {
	if s.corpus.Extractor == nil {
		return nil, errors.New("qdcbir: vector-mode system cannot extract image features")
	}
	q := s.corpus.Extractor.ExtractNormalized(im)
	return s.knnVector(q, k)
}

// KNNByRegion is KNNByImage restricted to the region [x0,x1) x [y0,y1) of the
// example image — the paper's §6 contour extension: the user outlines the
// object of interest so background noise stays out of the query. The region
// is clamped to the image bounds; an empty region is an error.
func (s *System) KNNByRegion(im *img.Image, x0, y0, x1, y1, k int) ([]Scored, error) {
	if s.corpus.Extractor == nil {
		return nil, errors.New("qdcbir: vector-mode system cannot extract image features")
	}
	if x1 <= x0 || y1 <= y0 {
		return nil, fmt.Errorf("qdcbir: empty region [%d,%d)x[%d,%d)", x0, x1, y0, y1)
	}
	q := s.corpus.Extractor.Normalize(feature.ExtractRegion(im, x0, y0, x1, y1))
	return s.knnVector(q, k)
}

func (s *System) knnVector(q vec.Vector, k int) ([]Scored, error) {
	if k <= 0 {
		return nil, fmt.Errorf("qdcbir: invalid k=%d", k)
	}
	return s.searchKNN(context.Background(), q, k)
}

// NewSession starts a relevance-feedback session. The seed drives the random
// candidate displays; sessions with equal seeds on the same system replay
// identically.
func (s *System) NewSession(seed int64) *Session {
	return &Session{
		sys:   s,
		inner: s.engine.NewSession(rand.New(rand.NewSource(seed))),
	}
}

// Corpus grants read access to the underlying dataset for advanced use
// (experiment harnesses, custom baselines).
func (s *System) Corpus() *dataset.Corpus { return s.corpus }

// RFS grants read access to the underlying RFS structure.
func (s *System) RFS() *rfs.Structure { return s.rfs }

// Engine grants access to the underlying query-decomposition engine for
// advanced use (the server package and the benchmark suite drive it
// directly).
func (s *System) Engine() *core.Engine { return s.engine }
