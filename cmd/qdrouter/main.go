// Command qdrouter fronts a fleet of qdserve shard replicas with a
// stateless scatter-gather tier (see internal/router): fleet verification
// at startup, health-checked failover between replicas of a shard, k-NN and
// finalize rounds fanned out per shard and merged bit-identically to the
// single-node engine, and feedback sessions pinned to their hosting replica
// by composite handle.
//
// Usage:
//
//	qdrouter -addr :8390 \
//	  -replica 0=http://localhost:8400 \
//	  -replica 1=http://localhost:8401 \
//	  -replica 2=http://localhost:8402
//
// Repeat -replica shard=url for every backend (several per shard for
// failover). -wait retries fleet verification while backends boot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qdcbir/internal/router"
)

// replicaFlags accumulates repeated -replica shard=url values.
type replicaFlags []router.ReplicaConfig

func (f *replicaFlags) String() string {
	parts := make([]string, len(*f))
	for i, rc := range *f {
		parts[i] = fmt.Sprintf("%d=%s", rc.Shard, rc.URL)
	}
	return strings.Join(parts, ",")
}

func (f *replicaFlags) Set(v string) error {
	eq := strings.IndexByte(v, '=')
	if eq <= 0 {
		return fmt.Errorf("want shard=url, got %q", v)
	}
	sh, err := strconv.Atoi(v[:eq])
	if err != nil || sh < 0 {
		return fmt.Errorf("bad shard index in %q", v)
	}
	*f = append(*f, router.ReplicaConfig{Shard: sh, URL: v[eq+1:]})
	return nil
}

func main() {
	var replicas replicaFlags
	var (
		addr     = flag.String("addr", ":8390", "listen address")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-backend request timeout")
		health   = flag.Duration("health-interval", 2*time.Second, "health probe interval")
		wait     = flag.Duration("wait", 0, "keep retrying fleet verification this long before giving up (for fleets still booting)")
		parallel = flag.Int("parallelism", 0, "concurrent shard legs per scatter (0 = one per shard)")
		scrape   = flag.Duration("scrape-interval", 5*time.Second, "fleet telemetry scrape interval for /v1/fleet/* (negative disables the loop; the endpoints then scrape on demand)")
	)
	flag.Var(&replicas, "replica", "backend as shard=url (repeatable)")
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	rt, err := router.New(router.Config{
		Replicas:       replicas,
		RequestTimeout: *timeout,
		HealthInterval: *health,
		Parallelism:    *parallel,
		ScrapeInterval: *scrape,
		Logger:         log,
	})
	if err != nil {
		log.Error("config invalid", "err", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	deadline := time.Now().Add(*wait)
	for {
		err = rt.VerifyFleet(ctx)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			log.Error("fleet verification failed", "err", err)
			os.Exit(1)
		}
		log.Info("fleet not ready, retrying", "err", err)
		select {
		case <-ctx.Done():
		case <-time.After(500 * time.Millisecond):
		}
	}
	rt.Start(ctx)

	log.Info("qdrouter starting",
		"addr", *addr,
		"shards", rt.Shards(),
		"images", rt.Meta().Images,
		"precision", rt.Meta().Precision,
		"archive_version", rt.Meta().ArchiveVersion)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		log.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
	}
}
