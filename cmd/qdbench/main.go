// Command qdbench regenerates the tables and figures of the paper's
// evaluation (§5) plus the ablation studies.
//
// Usage:
//
//	qdbench -exp table1            # Table 1: per-query precision & GTIR
//	qdbench -exp table2            # Table 2: quality per feedback round
//	qdbench -exp fig1              # Figure 1: PCA cluster scattering
//	qdbench -exp fig4to9           # Figures 4-9: qualitative top-k listings
//	qdbench -exp fig10 -sizes 5000,10000,15000
//	qdbench -exp fig11 -sizes 5000,10000,15000
//	qdbench -exp io                # §5.2.2 I/O accounting
//	qdbench -exp ablations
//	qdbench -exp all
//
// -scale quick runs a reduced corpus in seconds; -scale paper reproduces the
// full 15,000-image study (minutes).
//
// Regression-harness mode (mutually exclusive with -exp; see DESIGN.md §10):
//
//	qdbench -json current.json             # run the benchmark suite, write JSON
//	qdbench -json c.json -compare base.json -threshold 1.15
//	                                       # also diff against a baseline run;
//	                                       # exit 1 if any benchmark regressed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"qdcbir/internal/experiments"
	"qdcbir/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|fig1|fig4to9|fig10|fig11|io|extended|clientserver|video|ablations|all")
		scale    = flag.String("scale", "quick", "corpus scale: quick|paper")
		seed     = flag.Int64("seed", 1, "global random seed")
		users    = flag.Int("users", 0, "simulated users per query (0 = scale default)")
		sizes    = flag.String("sizes", "", "comma-separated DB sizes for fig10/fig11/io")
		queries  = flag.Int("queries", 0, "simulated queries per size for fig10/fig11/io (0 = default 100)")
		browse   = flag.Int("browse", 0, "random displays a user browses per round (0 = scale default; smaller values model impatient users and reproduce Table 2's gradual GTIR climb)")
		parallel = flag.Int("parallelism", 0, "worker count for build and finalize pools (0 = one per CPU; reported numbers are identical at every setting)")
		stats    = flag.String("stats", "", "write the run's metrics snapshot as JSON to this path ('-' = stderr)")
		quantize = flag.Bool("quantized", false, "run k-NN phases through the SQ8 two-phase scan (results are bit-identical; timing and rerank counters change)")
		rerank   = flag.Int("rerank-factor", 0, "quantized candidate multiplier (0 = default)")

		benchOut    = flag.String("json", "", "run the regression benchmark suite and write results as JSON to this path ('-' = stdout); skips -exp")
		benchBase   = flag.String("compare", "", "compare a fresh suite run against this baseline JSON; exit 1 on any regression or missing benchmark")
		threshold   = flag.Float64("threshold", 1.15, "regression threshold for -compare: fail when current ns/op exceeds threshold x baseline")
		benchFilter = flag.String("benchfilter", "", "regexp selecting suite benchmarks for -json/-compare (empty = all)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *benchOut != "" || *benchBase != "" {
		os.Exit(runBenchMode(*benchOut, *benchBase, *threshold, *benchFilter, log))
	}

	cfg := experiments.QuickConfig()
	if *scale == "paper" {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed
	if *users > 0 {
		cfg.Users = *users
	}
	if *browse > 0 {
		cfg.BrowsePerRound = *browse
	}
	cfg.Parallelism = *parallel
	cfg.Quantized = *quantize
	cfg.RerankFactor = *rerank
	var observer *obs.Observer
	if *stats != "" {
		observer = obs.New(obs.NewRegistry())
		cfg.Observer = observer
		defer writeStats(*stats, observer)
	}

	sweep := parseSizes(*sizes, *scale)

	needQuality := has(*exp, "table1", "table2", "all")
	needSystem := needQuality || has(*exp, "fig1", "fig4to9", "extended", "all")
	needEfficiency := has(*exp, "fig10", "fig11", "io", "all")

	var sys *experiments.System
	if needSystem {
		log.Info("building corpus", "images", cfg.TotalImages, "categories", cfg.Categories)
		sys = experiments.BuildSystem(cfg)
	}

	if needQuality {
		log.Info("running quality study", "users", cfg.Users, "queries", 11)
		rep := experiments.RunQuality(sys)
		if has(*exp, "table1", "all") {
			rep.WriteTable1(os.Stdout)
			fmt.Println()
		}
		if has(*exp, "table2", "all") {
			rep.WriteTable2(os.Stdout)
			fmt.Println()
		}
	}
	if has(*exp, "fig1", "all") {
		experiments.RunFig1(sys, "car").WriteText(os.Stdout)
		fmt.Println()
	}
	if has(*exp, "fig4to9", "all") {
		experiments.RunQualitative(sys).WriteText(os.Stdout)
	}
	if has(*exp, "extended", "all") {
		log.Info("running extended baseline comparison")
		experiments.RunExtended(sys).WriteText(os.Stdout)
		fmt.Println()
	}
	if has(*exp, "video", "all") {
		log.Info("running video extension experiment")
		vRep, err := experiments.RunVideo(cfg, 0, 0, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qdbench:", err)
			os.Exit(1)
		}
		vRep.WriteText(os.Stdout)
		fmt.Println()
	}
	if has(*exp, "clientserver", "all") {
		log.Info("running client/server cost analysis")
		csRep, err := experiments.RunClientServer(cfg, 20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qdbench:", err)
			os.Exit(1)
		}
		csRep.WriteText(os.Stdout)
		fmt.Println()
	}
	if needEfficiency {
		log.Info("running efficiency sweep", "sizes", fmt.Sprint(sweep))
		rep := experiments.RunEfficiency(cfg, sweep, *queries)
		if has(*exp, "fig10", "all") {
			rep.WriteFig10(os.Stdout)
			fmt.Println()
		}
		if has(*exp, "fig11", "all") {
			rep.WriteFig11(os.Stdout)
			fmt.Println()
		}
		if has(*exp, "io", "all") {
			rep.WriteIO(os.Stdout)
			fmt.Println()
		}
	}
	if has(*exp, "ablations", "all") {
		log.Info("running ablations")
		acfg := cfg
		if acfg.Users > 4 {
			acfg.Users = 4 // ablations sweep 12 settings; cap per-setting cost
		}
		experiments.RunAblations(acfg).WriteText(os.Stdout)
	}
}

// writeStats dumps the observer's metrics snapshot as indented JSON to a file
// or, for "-", to stderr (keeping stdout clean for the experiment tables).
func writeStats(path string, o *obs.Observer) {
	data, err := json.MarshalIndent(o.Registry().Snapshot(), "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "qdbench: stats:", err)
		return
	}
	data = append(data, '\n')
	if path == "-" {
		_, _ = os.Stderr.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "qdbench: stats:", err)
	}
}

func has(exp string, names ...string) bool {
	for _, n := range names {
		if exp == n {
			return true
		}
	}
	return false
}

func parseSizes(s, scale string) []int {
	if s == "" {
		if scale == "paper" {
			return []int{5000, 10000, 15000, 20000, 30000, 50000}
		}
		return []int{1000, 2000, 4000}
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "qdbench: bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
