package main

import "testing"

func TestHas(t *testing.T) {
	if !has("table1", "table1", "all") {
		t.Error("exact match failed")
	}
	if has("table1", "table2", "fig1") {
		t.Error("false positive")
	}
	if !has("all", "table1", "all") {
		t.Error("all not matched")
	}
}

func TestParseSizesDefaults(t *testing.T) {
	quick := parseSizes("", "quick")
	if len(quick) == 0 || quick[0] != 1000 {
		t.Errorf("quick defaults = %v", quick)
	}
	paper := parseSizes("", "paper")
	if len(paper) != 6 || paper[len(paper)-1] != 50000 {
		t.Errorf("paper defaults = %v", paper)
	}
}

func TestParseSizesExplicit(t *testing.T) {
	got := parseSizes("100, 200 ,300", "quick")
	want := []int{100, 200, 300}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sizes[%d] = %d want %d", i, got[i], want[i])
		}
	}
}
