package main

import (
	"fmt"
	"log/slog"
	"os"

	"qdcbir/internal/benchjson"
	"qdcbir/internal/benchsuite"
)

// runBenchMode runs the regression benchmark suite (-json / -compare).
// Returns the process exit code: 0 on success, 1 on a regression or missing
// benchmark, 2 on operational errors (bad filter, unreadable baseline).
func runBenchMode(outPath, baselinePath string, threshold float64, filter string, log *slog.Logger) int {
	if threshold <= 1 {
		log.Error("invalid threshold", "threshold", threshold, "want", "> 1")
		return 2
	}
	current, err := benchsuite.Run(benchsuite.Options{Filter: filter, Description: "qdbench regression-suite run"},
		func(format string, args ...any) { log.Info("bench: " + fmt.Sprintf(format, args...)) })
	if err != nil {
		log.Error("benchmark suite failed", "err", err)
		return 2
	}
	if outPath == "-" {
		if err := current.Write(os.Stdout); err != nil {
			log.Error("write results", "err", err)
			return 2
		}
	} else if outPath != "" {
		if err := current.WriteFile(outPath); err != nil {
			log.Error("write results", "err", err)
			return 2
		}
		log.Info("wrote benchmark results", "path", outPath, "benchmarks", len(current.Benchmarks))
	}
	if baselinePath == "" {
		return 0
	}
	baseline, err := benchjson.Load(baselinePath)
	if err != nil {
		log.Error("load baseline", "err", err)
		return 2
	}
	rep := benchjson.Compare(baseline, current, threshold)
	rep.WriteText(os.Stderr, threshold)
	if !rep.OK() {
		return 1
	}
	return 0
}
