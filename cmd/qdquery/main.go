// Command qdquery is a terminal stand-in for the prototype's Presentation
// Manager (§4, the ImageGrouper GUI): it runs an interactive relevance-
// feedback session against a database built by qdbuild (or a small corpus
// built on the fly), displaying representative images as their ground-truth
// labels.
//
// Usage:
//
//	qdquery                 # build a small corpus in-memory and query it
//	qdquery -db db.gob      # query a database persisted by qdbuild
//	qdquery -db emb.gob     # also opens versioned archives (qdbuild -import)
//
// Session commands:
//
//	r               reshuffle the candidate display (the GUI's "Random")
//	m 3 17 42       mark the listed display positions as relevant
//	u 3             retract an earlier mark by display position
//	w color 2.5     weight a feature family (color|texture|edge) in the final k-NN
//	f               submit the round's marks as relevance feedback
//	done [k]        finalize: run the localized k-NN subqueries and show results
//	auto <query>    let a simulated user run the whole session for a named query
//	queries         list the paper's evaluation queries
//	q               quit
package main

import (
	"bufio"
	"encoding/gob"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"qdcbir"
	"qdcbir/internal/core"
	"qdcbir/internal/dataset"
	"qdcbir/internal/feature"
	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
	"qdcbir/internal/user"
	"qdcbir/internal/vec"
)

type db struct {
	infos  []dataset.Info
	rfs    *rfs.Structure
	engine *core.Engine
}

func (d *db) subconceptOf(id int) string {
	if id < 0 || id >= len(d.infos) {
		return ""
	}
	return d.infos[id].Subconcept
}

func main() {
	var (
		path     = flag.String("db", "", "database file written by qdbuild (empty = build small corpus)")
		seed     = flag.Int64("seed", 1, "session seed")
		parallel = flag.Int("parallelism", 0, "worker count for build and finalize pools (0 = one per CPU)")
		traceOut = flag.String("trace-out", "", "on exit, write the session's traces as Perfetto trace-event JSON to this path (open at ui.perfetto.dev)")
		quantize = flag.Bool("quantized", false, "run k-NN phases through the SQ8 two-phase scan (adopts the archive's quantizer when present, else trains one; results are identical)")
	)
	flag.Parse()

	var observer *obs.Observer
	if *traceOut != "" {
		observer = obs.New(obs.NewRegistry())
	}
	d, err := open(*path, *seed, *parallel, *quantize, observer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qdquery:", err)
		os.Exit(1)
	}
	fmt.Printf("database: %d images, tree height %d, %d representatives\n",
		len(d.infos), d.rfs.Tree().Height(), d.rfs.RepCount())

	repl(d, rand.New(rand.NewSource(*seed)), os.Stdin, os.Stdout)

	if *traceOut != "" {
		if err := writeTraces(*traceOut, observer); err != nil {
			fmt.Fprintln(os.Stderr, "qdquery: trace-out:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace(s) to %s\n", len(observer.Traces()), *traceOut)
	}
}

// writeTraces dumps every retained trace as a Perfetto-loadable trace-event
// file ('-' = stdout).
func writeTraces(path string, o *obs.Observer) error {
	if path == "-" {
		return obs.WritePerfetto(os.Stdout, o.Traces())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WritePerfetto(f, o.Traces()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func open(path string, seed int64, parallelism int, quantize bool, observer *obs.Observer) (*db, error) {
	var infos []dataset.Info
	var structure *rfs.Structure
	if path == "" {
		fmt.Fprintln(os.Stderr, "no -db given; building a small in-memory corpus...")
		spec := dataset.SmallSpec(seed, 25, 1200)
		corpus := dataset.Build(spec, dataset.Options{Seed: seed + 1, Parallelism: parallelism})
		infos = corpus.Infos
		structure = rfs.Build(corpus.Vectors, rfs.BuildConfig{
			RepFraction: 0.2,
			Tree:        rstar.Config{MaxFill: 24},
			TargetFill:  20,
			Seed:        seed + 2,
			Parallelism: parallelism,
		})
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		br := bufio.NewReader(f)
		// Versioned system archives (qdbuild -import, qdcbir.SaveFile) open
		// with the 0xD1 'Q' 'D' magic — a prefix no gob stream can start with.
		// They carry their own configuration (dimension, precision, quantizer),
		// so the engine flags of this command don't apply to them.
		if head, err := br.Peek(3); err == nil && head[0] == 0xD1 && head[1] == 'Q' && head[2] == 'D' {
			sys, err := qdcbir.Load(br)
			if err != nil {
				return nil, fmt.Errorf("decode %s: %w", path, err)
			}
			if observer != nil {
				sys = sys.WithObserver(observer)
			}
			return &db{infos: sys.Corpus().Infos, rfs: sys.RFS(), engine: sys.Engine()}, nil
		}
		var arch struct {
			Infos []dataset.Info
			RFS   *rfs.Snapshot
			Quant *store.QuantParts
		}
		if err := gob.NewDecoder(br).Decode(&arch); err != nil {
			return nil, fmt.Errorf("decode %s: %w", path, err)
		}
		structure, err = rfs.FromSnapshot(arch.RFS)
		if err != nil {
			return nil, err
		}
		infos = arch.Infos
		if quantize && arch.Quant != nil {
			qz, err := store.FromParts(*arch.Quant)
			if err != nil {
				return nil, fmt.Errorf("quantizer: %w", err)
			}
			if err := structure.AdoptQuantized(qz); err != nil {
				return nil, fmt.Errorf("quantizer: %w", err)
			}
		}
	}
	// An unadopted quantized structure trains its quantizer inside
	// core.NewEngine (Config.Quantized).
	return &db{
		infos:  infos,
		rfs:    structure,
		engine: core.NewEngine(structure, core.Config{Parallelism: parallelism, Observer: observer, Quantized: quantize}),
	}, nil
}

func repl(d *db, rng *rand.Rand, in io.Reader, out io.Writer) {
	sess := d.engine.NewSession(rng)
	display := sess.Candidates()
	show(out, display, d)
	var pending []rstar.ItemID
	var weights vec.Vector

	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "> ")
			continue
		}
		switch fields[0] {
		case "q", "quit", "exit":
			return
		case "r":
			display = sess.Candidates()
			show(out, display, d)
		case "m":
			for _, f := range fields[1:] {
				pos, err := strconv.Atoi(f)
				if err != nil || pos < 0 || pos >= len(display) {
					fmt.Fprintf(out, "bad position %q\n", f)
					continue
				}
				pending = append(pending, display[pos].ID)
				fmt.Fprintf(out, "marked #%d (%s)\n", pos, d.subconceptOf(int(display[pos].ID)))
			}
		case "u":
			for _, f := range fields[1:] {
				pos, err := strconv.Atoi(f)
				if err != nil || pos < 0 || pos >= len(display) {
					fmt.Fprintf(out, "bad position %q\n", f)
					continue
				}
				id := display[pos].ID
				// Drop from this round's pending marks and from the panel.
				kept := pending[:0]
				for _, p := range pending {
					if p != id {
						kept = append(kept, p)
					}
				}
				pending = kept
				sess.Retract([]rstar.ItemID{id})
				fmt.Fprintf(out, "retracted #%d (%s)\n", pos, d.subconceptOf(int(id)))
			}
		case "w":
			if len(fields) != 3 {
				fmt.Fprintln(out, "usage: w color|texture|edge <multiplier>")
				break
			}
			mult, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || mult < 0 {
				fmt.Fprintf(out, "bad multiplier %q\n", fields[2])
				break
			}
			fam, ok := parseFamily(fields[1])
			if !ok {
				fmt.Fprintf(out, "unknown family %q\n", fields[1])
				break
			}
			if weights == nil {
				weights = make(vec.Vector, feature.Dim)
				for i := range weights {
					weights[i] = 1
				}
			}
			lo, hi := fam.Range()
			for i := lo; i < hi; i++ {
				weights[i] *= mult
			}
			if err := sess.SetFeatureWeights(weights); err != nil {
				fmt.Fprintln(out, "weights:", err)
			} else {
				fmt.Fprintf(out, "%s weighted x%.2f\n", fields[1], mult)
			}
		case "f":
			if err := sess.Feedback(pending); err != nil {
				fmt.Fprintln(out, "feedback:", err)
			} else {
				fmt.Fprintf(out, "round committed: %d marks, %d active subqueries\n",
					len(pending), len(sess.Frontier()))
				pending = nil
				display = sess.Candidates()
				show(out, display, d)
			}
		case "done":
			k := 24
			if len(fields) > 1 {
				if n, err := strconv.Atoi(fields[1]); err == nil && n > 0 {
					k = n
				}
			}
			if len(pending) > 0 {
				if err := sess.Feedback(pending); err != nil {
					fmt.Fprintln(out, "feedback:", err)
				}
				pending = nil
			}
			res, err := sess.Finalize(k)
			if err != nil {
				fmt.Fprintln(out, "finalize:", err)
				fmt.Fprint(out, "> ")
				continue
			}
			printResult(out, res, d)
			return
		case "auto":
			name := strings.Join(fields[1:], " ")
			if err := autoSession(out, d, name, rng); err != nil {
				fmt.Fprintln(out, "auto:", err)
			}
			return
		case "queries":
			for _, q := range dataset.PaperQueries() {
				fmt.Fprintf(out, "  %-22s -> %s\n", q.Name, strings.Join(q.Targets, ", "))
			}
		default:
			fmt.Fprintln(out, "commands: r | m <pos...> | u <pos...> | w <family> <mult> | f | done [k] | auto <query> | queries | q")
		}
		fmt.Fprint(out, "> ")
	}
}

// parseFamily maps a command token to a feature family.
func parseFamily(name string) (feature.Family, bool) {
	switch name {
	case "color":
		return feature.FamilyColor, true
	case "texture":
		return feature.FamilyTexture, true
	case "edge":
		return feature.FamilyEdge, true
	default:
		return 0, false
	}
}

func show(out io.Writer, cands []core.Candidate, d *db) {
	fmt.Fprintf(out, "--- %d candidate representatives ---\n", len(cands))
	for i, c := range cands {
		fmt.Fprintf(out, "  [%2d] image %-6d %s\n", i, c.ID, d.subconceptOf(int(c.ID)))
	}
}

func printResult(out io.Writer, res *core.Result, d *db) {
	fmt.Fprintf(out, "=== %d result groups ===\n", len(res.Groups))
	for gi, g := range res.Groups {
		fmt.Fprintf(out, "group %d (rank score %.3f, %d query images):\n", gi+1, g.RankScore, len(g.QueryIDs))
		for _, im := range g.Images {
			fmt.Fprintf(out, "    image %-6d score %.3f  %s\n", im.ID, im.Score, d.subconceptOf(int(im.ID)))
		}
	}
}

// autoSession lets the ground-truth simulator drive the whole protocol for a
// named paper query — a scripted demo of the full loop.
func autoSession(out io.Writer, d *db, name string, rng *rand.Rand) error {
	var query dataset.Query
	for _, q := range dataset.PaperQueries() {
		if strings.EqualFold(q.Name, name) {
			query = q
			break
		}
	}
	if query.Name == "" {
		return fmt.Errorf("unknown query %q (try 'queries')", name)
	}
	sim := user.New(query.Targets, d.subconceptOf, rng)
	sess := d.engine.NewSession(rng)
	relCount := 0
	for round := 0; round < 3; round++ {
		var shown []int
		for disp := 0; disp < 15; disp++ {
			for _, c := range sess.Candidates() {
				shown = append(shown, int(c.ID))
			}
		}
		sim.MaxPerRound = 8
		var marks []rstar.ItemID
		for _, id := range sim.SelectDiverse(shown) {
			marks = append(marks, rstar.ItemID(id))
		}
		if err := sess.Feedback(marks); err != nil {
			return err
		}
		relCount += len(marks)
		fmt.Fprintf(out, "round %d: marked %d, %d active subqueries\n",
			round+1, len(marks), len(sess.Frontier()))
	}
	if relCount == 0 {
		return fmt.Errorf("simulated user found nothing relevant")
	}
	res, err := sess.Finalize(24)
	if err != nil {
		return err
	}
	printResult(out, res, d)
	return nil
}
