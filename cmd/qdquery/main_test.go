package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"qdcbir"
	"qdcbir/internal/core"
	"qdcbir/internal/dataset"
	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
)

var (
	dbOnce sync.Once
	testDB *db
)

func smallDB(t *testing.T) *db {
	t.Helper()
	dbOnce.Do(func() {
		spec := dataset.SmallSpec(1, 12, 400)
		corpus := dataset.Build(spec, dataset.Options{Seed: 2})
		structure := rfs.Build(corpus.Vectors, rfs.BuildConfig{
			RepFraction: 0.2,
			Tree:        rstar.Config{MaxFill: 20},
			TargetFill:  16,
			Seed:        3,
		})
		testDB = &db{
			infos:  corpus.Infos,
			rfs:    structure,
			engine: core.NewEngine(structure, core.Config{}),
		}
	})
	if testDB == nil {
		t.Fatal("fixture failed")
	}
	return testDB
}

func runREPL(t *testing.T, script string) string {
	t.Helper()
	d := smallDB(t)
	var out bytes.Buffer
	repl(d, rand.New(rand.NewSource(5)), strings.NewReader(script), &out)
	return out.String()
}

func TestREPLQuit(t *testing.T) {
	out := runREPL(t, "q\n")
	if !strings.Contains(out, "candidate representatives") {
		t.Errorf("no initial display: %q", out)
	}
}

func TestREPLReshuffleAndHelp(t *testing.T) {
	out := runREPL(t, "r\nbogus\nqueries\nq\n")
	if strings.Count(out, "candidate representatives") < 2 {
		t.Error("reshuffle did not redisplay")
	}
	if !strings.Contains(out, "commands:") {
		t.Error("unknown command did not print help")
	}
	if !strings.Contains(out, "Laptop") {
		t.Error("queries listing missing")
	}
}

func TestREPLMarkFeedbackFinalize(t *testing.T) {
	out := runREPL(t, "m 0 1 2\nf\ndone 6\n")
	if !strings.Contains(out, "marked #0") {
		t.Errorf("mark not acknowledged: %q", out)
	}
	if !strings.Contains(out, "round committed: 3 marks") {
		t.Error("feedback not committed")
	}
	if !strings.Contains(out, "result groups") {
		t.Error("no results printed")
	}
}

func TestREPLBadPositions(t *testing.T) {
	out := runREPL(t, "m 999 notanumber -1\nq\n")
	if strings.Count(out, "bad position") != 3 {
		t.Errorf("bad positions not all rejected: %q", out)
	}
}

func TestREPLRetractAndWeights(t *testing.T) {
	out := runREPL(t, "m 0 1\nu 0\nw color 2\nw bogus 2\nw color notanumber\nf\ndone 4\n")
	if !strings.Contains(out, "retracted #0") {
		t.Errorf("retract not acknowledged: %q", out)
	}
	if !strings.Contains(out, "color weighted x2.00") {
		t.Error("weight not applied")
	}
	if !strings.Contains(out, `unknown family "bogus"`) {
		t.Error("bad family not rejected")
	}
	if !strings.Contains(out, `bad multiplier`) {
		t.Error("bad multiplier not rejected")
	}
	if !strings.Contains(out, "round committed: 1 marks") {
		t.Errorf("expected 1 surviving mark: %q", out)
	}
	if !strings.Contains(out, "result groups") {
		t.Error("no results")
	}
}

func TestREPLFinalizeWithoutFeedback(t *testing.T) {
	out := runREPL(t, "done\nq\n")
	if !strings.Contains(out, "finalize:") {
		t.Errorf("finalize without feedback should report error: %q", out)
	}
}

func TestREPLAutoSession(t *testing.T) {
	out := runREPL(t, "auto Bird\n")
	if !strings.Contains(out, "result groups") {
		t.Errorf("auto session produced no results: %q", out)
	}
	if !strings.Contains(out, "bird/") {
		t.Error("results contain no bird images")
	}
	// Unknown query errors cleanly.
	out2 := runREPL(t, "auto NoSuchThing\n")
	if !strings.Contains(out2, "unknown query") {
		t.Error("unknown auto query not rejected")
	}
}

func TestOpenInMemory(t *testing.T) {
	d, err := open("", 9, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.infos) == 0 || d.rfs.RepCount() == 0 {
		t.Fatal("in-memory open produced empty db")
	}
	if got := d.subconceptOf(-1); got != "" {
		t.Errorf("out-of-range label = %q", got)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := open("/nonexistent/file.gob", 1, 0, false, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestWriteTraces drives a session under an observer and checks the -trace-out
// file is a loadable trace-event document covering the session's spans.
func TestWriteTraces(t *testing.T) {
	observer := obs.New(obs.NewRegistry())
	d := smallDB(t)
	observed := &db{
		infos:  d.infos,
		rfs:    d.rfs,
		engine: core.NewEngine(d.rfs, core.Config{Observer: observer}),
	}
	var out bytes.Buffer
	repl(observed, rand.New(rand.NewSource(5)), strings.NewReader("m 0 1 2\nf\ndone 6\n"), &out)
	if !strings.Contains(out.String(), "result groups") {
		t.Fatalf("session did not finalize: %q", out.String())
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTraces(path, observer); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file obs.TraceEventFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace-out is not valid trace-event JSON: %v", err)
	}
	var names []string
	for _, ev := range file.TraceEvents {
		names = append(names, ev.Name)
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{"session", "round 1", "finalize", "merge"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace-out missing %q event; have:\n%s", want, joined)
		}
	}
}

// TestOpenVersionedArchive checks open() detects the 0xD1 'Q' 'D' magic and
// routes versioned system archives (the qdbuild -import output format)
// through qdcbir.Load instead of the legacy gob decoder.
func TestOpenVersionedArchive(t *testing.T) {
	sys, err := qdcbir.Build(qdcbir.Config{
		Seed: 4, Categories: 8, Images: 200, VectorMode: true,
		NodeCapacity: 20, RepFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "versioned.gob")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := open(path, 1, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.infos) != sys.Len() {
		t.Fatalf("opened %d infos, want %d", len(d.infos), sys.Len())
	}
	var out bytes.Buffer
	repl(d, rand.New(rand.NewSource(5)), strings.NewReader("q\n"), &out)
	if !strings.Contains(out.String(), "candidate representatives") {
		t.Errorf("no display from versioned archive: %q", out.String())
	}
}
