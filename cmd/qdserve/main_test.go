package main

import (
	"net/http/httptest"
	"testing"

	"qdcbir/internal/server"
)

func TestLoadInMemoryAndServe(t *testing.T) {
	ld, err := load("", 400, 1, true, 0, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, label := ld.eng, ld.label
	if eng.RFS().Len() == 0 {
		t.Fatal("empty engine")
	}
	if len(ld.rasters) != eng.RFS().Len() {
		t.Fatalf("%d rasters for %d images", len(ld.rasters), eng.RFS().Len())
	}
	if label(0) == "" {
		t.Error("labeler returned empty for image 0")
	}
	if label(-1) != "" {
		t.Error("labeler should be empty out of range")
	}
	// The loaded engine is servable end to end.
	srv := server.New(eng, label)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := server.Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Images() != eng.RFS().Len() {
		t.Errorf("client sees %d images", c.Images())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := load("/nonexistent.gob", 0, 1, false, 0, false, false, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}
