// Command qdserve exposes a built retrieval database over the HTTP/JSON API
// of internal/server — the paper's client/server configuration (§4). Thin
// clients drive hosted feedback sessions; smart clients download the
// representative payload once (GET /v1/payload), run feedback locally, and
// touch the server only for the final localized k-NN (POST /v1/query).
//
// Usage:
//
//	qdserve -db db.gob -addr :8399        # serve a qdbuild archive
//	qdserve -images 1200 -addr :8399      # build a small corpus and serve it
package main

import (
	"context"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"qdcbir"
	"qdcbir/internal/core"
	"qdcbir/internal/dataset"
	"qdcbir/internal/img"
	"qdcbir/internal/obs"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/server"
	"qdcbir/internal/shard"
	"qdcbir/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8399", "listen address")
		path     = flag.String("db", "", "database file written by qdbuild (empty = build in-memory)")
		images   = flag.Int("images", 1200, "corpus size when building in-memory")
		seed     = flag.Int64("seed", 1, "build seed")
		ui       = flag.Bool("ui", false, "serve the browser front end at /ui (in-memory build only; keeps rendered images)")
		parallel = flag.Int("parallelism", 0, "worker count for build and query pools (0 = one per CPU)")
		debug    = flag.Bool("debug", false, "expose net/http/pprof profiling under /debug/pprof/")
		digests  = flag.Duration("digest-interval", time.Minute, "how often to log the 1m windowed latency digests (0 disables)")
		quantize = flag.Bool("quantized", false, "run k-NN phases through the SQ8 two-phase scan (adopts the archive's quantizer when present, else trains one; results are identical)")
		queryTO  = flag.Duration("query-timeout", 0, "server-side time budget per request (0 = none); expiry returns a structured 503 with Retry-After")
		dynamic  = flag.Bool("dynamic", false, "serve through the segmented online-ingest engine: POST /v1/images inserts, DELETE /v1/images/{id} tombstones, queries pin epoch snapshots (dynamic v4 archives enable this automatically)")
		maxConc  = flag.Int("max-concurrent", 0, "admission control: searches executing at once (0 disables admission control)")
		queueCap = flag.Int("queue-bound", 64, "admission control: requests waiting per endpoint before shedding with 503 overloaded")
		coalesce = flag.Duration("coalesce-window", 0, "group concurrent same-node shard-search legs arriving within this window into one multi-query batch dispatch (0 disables)")
		shedP99  = flag.Duration("shed-p99", 0, "p99 latency target for backpressure: while an endpoint's 1m p99 exceeds it, the effective queue bound shrinks to a quarter (0 disables)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *ui && *path != "" {
		fmt.Fprintln(os.Stderr, "qdserve: -ui requires an in-memory build (archives do not store rasters)")
		os.Exit(2)
	}
	if *ui && *dynamic {
		fmt.Fprintln(os.Stderr, "qdserve: -ui is unavailable in -dynamic mode (the ingest corpus has no rasters)")
		os.Exit(2)
	}
	// One observer for the process: the engine reports session/query telemetry
	// into it and the server adopts it, so /metrics and /v1/stats see both.
	observer := obs.New(obs.NewRegistry())
	ld, err := load(*path, *images, *seed, *ui, *parallel, *quantize, *dynamic, observer)
	if err != nil {
		log.Error("load failed", "err", err)
		os.Exit(1)
	}
	var srv *server.Server
	if ld.dyn != nil {
		srv = server.NewDynamic(ld.dyn, observer)
		st := ld.dyn.Stats()
		log.Info("dynamic ingest mode",
			"epoch", st.Epoch, "segments", st.Segments, "mem_rows", st.MemRows,
			"tombstones", st.Tombstones, "live", st.Live)
	} else {
		srv = server.New(ld.eng, ld.label)
	}
	srv.SetLogger(log)
	srv.SetQueryTimeout(*queryTO)
	srv.SetArchiveInfo(ld.version, ld.precision, ld.quantized)
	if *maxConc > 0 || *coalesce > 0 {
		srv.SetScheduler(server.SchedConfig{
			MaxConcurrent: *maxConc,
			QueueBound:    *queueCap,
			Window:        *coalesce,
			ShedP99:       *shedP99,
		})
		log.Info("scheduler enabled",
			"max_concurrent", *maxConc, "queue_bound", *queueCap,
			"coalesce_window", *coalesce, "shed_p99", *shedP99)
	}
	if ld.replica != nil {
		srv.SetShard(ld.replica)
		m := ld.replica.Meta()
		log.Info("shard replica mode",
			"shard", m.ShardIndex, "of", m.ShardCount,
			"local_images", m.LocalImages, "corpus_images", m.Images,
			"corpus_sig", fmt.Sprintf("%016x", m.CorpusSig))
	}
	if ld.rasters != nil {
		srv.SetImages(ld.rasters)
		log.Info("web UI enabled", "url", fmt.Sprintf("http://localhost%s/ui", *addr))
	}
	handler := srv.Handler()
	if *debug {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}
	bi := srv.BuildInfo()
	reps := 0
	if ld.eng != nil {
		reps = ld.eng.RFS().RepCount()
	}
	log.Info("qdserve starting",
		"addr", *addr,
		"images", bi.Images, "representatives", reps, "tree_height", bi.TreeHeight,
		"archive_version", ld.version, "precision", ld.precision, "quantized", ld.quantized,
		"go", bi.GoVersion, "revision", bi.Revision, "vcs_modified", bi.VCSModified)
	log.Info("observability endpoints",
		"metrics", "/metrics", "stats", "/v1/stats", "traces", "/v1/traces",
		"latency", "/v1/latency", "slow", "/v1/slow",
		"buildinfo", "/v1/buildinfo", "health", "/healthz")

	// SIGINT/SIGTERM drain in-flight requests (whose contexts cancel any
	// running localized subqueries) before exiting; the timeouts cap how long
	// a slow or stuck client can pin a connection.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *digests > 0 {
		go logDigests(ctx, log, observer, *digests)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		log.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
	}
}

// logDigests periodically summarizes the sliding-window latency digests to the
// server log: one line per active digest covering the shortest default window
// (skipping digests that saw no samples, so an idle server stays quiet). The
// full three-window report stays available at /v1/latency.
func logDigests(ctx context.Context, log *slog.Logger, o *obs.Observer, every time.Duration) {
	window := obs.DefaultWindows[0]
	label := obs.WindowLabel(window)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		rep := o.Windows().Report([]time.Duration{window})
		names := make([]string, 0, len(rep))
		for name := range rep {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := rep[name][label]
			if st.Count == 0 {
				continue
			}
			log.Info("latency digest",
				"digest", name, "window", label, "count", st.Count,
				"p50_ms", 1e3*st.P50, "p95_ms", 1e3*st.P95, "p99_ms", 1e3*st.P99)
		}
	}
}

// loaded is everything main needs from whichever archive flavor was opened.
type loaded struct {
	eng       *core.Engine
	dyn       *qdcbir.Dynamic // non-nil in dynamic online-ingest mode
	label     server.Labeler
	rasters   []*img.Image
	replica   *shard.Replica // non-nil in shard-replica mode
	version   int            // archive format version (0 = in-memory or legacy gob)
	precision string         // "float64", "float32", or "sq8"
	quantized bool
}

func precisionTag(quantized, f32 bool) string {
	switch {
	case quantized:
		return "sq8"
	case f32:
		return "float32"
	default:
		return "float64"
	}
}

// load opens the database by sniffing the archive's magic header: a shard
// slice (internal/shard), a dynamic segmented archive (Dynamic.Save), a
// versioned system archive (qdcbir.Save), or a legacy bare-gob qdbuild
// archive. An empty path builds a small corpus in process. dynamic forces
// the online-ingest engine: static archives and in-process builds are
// adopted as a single sealed segment; v4 archives select it automatically.
func load(path string, images int, seed int64, keepImages bool, parallelism int, quantize, dynamic bool, observer *obs.Observer) (*loaded, error) {
	if path == "" && dynamic {
		cfg := qdcbir.SmallConfig()
		cfg.Seed = seed
		cfg.Images = images
		cfg.Parallelism = parallelism
		cfg.Quantized = quantize
		cfg.VectorMode = true // dynamic mode serves vectors, not rasters
		sys, err := qdcbir.Build(cfg)
		if err != nil {
			return nil, err
		}
		dyn, err := qdcbir.OpenDynamic(sys, qdcbir.DynamicConfig{Observer: observer})
		if err != nil {
			return nil, err
		}
		return &loaded{
			dyn: dyn, precision: precisionTag(dyn.Config().Quantized, dyn.Config().Float32),
			quantized: dyn.Config().Quantized,
		}, nil
	}
	if path == "" {
		spec := dataset.SmallSpec(seed, 25, images)
		corpus := dataset.Build(spec, dataset.Options{
			Seed:        seed + 1,
			KeepImages:  keepImages,
			Parallelism: parallelism,
		})
		structure := rfs.Build(corpus.Vectors, rfs.BuildConfig{
			RepFraction: 0.2,
			Tree:        rstar.Config{MaxFill: 24},
			TargetFill:  20,
			Seed:        seed + 2,
			Parallelism: parallelism,
		})
		eng := core.NewEngine(structure, core.Config{Parallelism: parallelism, Observer: observer, Quantized: quantize})
		return &loaded{
			eng: eng, label: corpus.SubconceptOf, rasters: corpus.Images,
			precision: precisionTag(quantize, false), quantized: quantize,
		}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, 4)
	_, headErr := io.ReadFull(f, head)
	f.Close()
	if headErr == nil && shard.IsArchiveHeader(head) {
		if dynamic {
			return nil, fmt.Errorf("shard archive %s: shard replicas are read-only slices and cannot be served dynamically", path)
		}
		rep, sys, err := qdcbir.OpenShardFile(path)
		if err != nil {
			return nil, fmt.Errorf("shard archive %s: %w", path, err)
		}
		m := rep.Meta()
		sys = sys.WithObserver(observer)
		return &loaded{
			eng: sys.Engine(), label: rep.Labeler(), replica: rep,
			version: m.ArchiveVersion, precision: m.Precision, quantized: m.Quantized,
		}, nil
	}
	if v, ok := qdcbir.ArchiveHeaderVersion(head); headErr == nil && ok {
		if v == qdcbir.DynamicArchiveVersion || dynamic {
			// A v4 archive is dynamic by construction; -dynamic adopts a
			// static archive as a single sealed segment.
			dyn, err := qdcbir.LoadDynamicFile(path, observer)
			if err != nil {
				return nil, fmt.Errorf("archive %s: %w", path, err)
			}
			return &loaded{
				dyn: dyn, version: v,
				precision: precisionTag(dyn.Config().Quantized, dyn.Config().Float32),
				quantized: dyn.Config().Quantized,
			}, nil
		}
		sys, err := qdcbir.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("archive %s: %w", path, err)
		}
		sys = sys.WithObserver(observer)
		return &loaded{
			eng: sys.Engine(), label: sys.SubconceptOf,
			version:   v,
			precision: precisionTag(sys.Quantized(), sys.Config().Float32),
			quantized: sys.Quantized(),
		}, nil
	}
	if dynamic {
		return nil, fmt.Errorf("archive %s: legacy gob archives carry no corpus store and cannot be served dynamically (re-save with qdbuild first)", path)
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var arch struct {
		Infos []dataset.Info
		RFS   *rfs.Snapshot
		Quant *store.QuantParts
	}
	if err := gob.NewDecoder(f).Decode(&arch); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	structure, err := rfs.FromSnapshot(arch.RFS)
	if err != nil {
		return nil, err
	}
	if quantize && arch.Quant != nil {
		qz, err := store.FromParts(*arch.Quant)
		if err != nil {
			return nil, fmt.Errorf("quantizer: %w", err)
		}
		if err := structure.AdoptQuantized(qz); err != nil {
			return nil, fmt.Errorf("quantizer: %w", err)
		}
	}
	infos := arch.Infos
	label := func(id int) string {
		if id < 0 || id >= len(infos) {
			return ""
		}
		return infos[id].Subconcept
	}
	// An unadopted quantized structure trains its quantizer inside
	// core.NewEngine (Config.Quantized).
	eng := core.NewEngine(structure, core.Config{Parallelism: parallelism, Observer: observer, Quantized: quantize})
	return &loaded{
		eng: eng, label: label,
		precision: precisionTag(quantize, false), quantized: quantize,
	}, nil
}
