package main

import (
	"bytes"
	"encoding/gob"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"qdcbir/internal/rfs"
)

func TestBuildArchiveAndRoundTrip(t *testing.T) {
	arch, err := buildArchive(1, 10, 300, 20, 0.2, false, "str", slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.Infos) == 0 || arch.RFS == nil {
		t.Fatal("empty archive")
	}
	// Encode/decode through a real file, then reconstruct the structure —
	// the qdbuild → qdquery/qdserve handoff.
	path := filepath.Join(t.TempDir(), "db.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(arch); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var loaded Archive
	if err := gob.NewDecoder(g).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	structure, err := rfs.FromSnapshot(loaded.RFS)
	if err != nil {
		t.Fatal(err)
	}
	if structure.Len() != len(arch.Infos) {
		t.Errorf("loaded %d images for %d infos", structure.Len(), len(arch.Infos))
	}
	if structure.RepCount() == 0 {
		t.Error("no representatives after reload")
	}
}

func TestBuildArchiveVectorMode(t *testing.T) {
	var log bytes.Buffer
	arch, err := buildArchive(2, 10, 400, 20, 0.1, true, "kmeans", slog.New(slog.NewTextHandler(&log, nil)))
	if err != nil {
		t.Fatal(err)
	}
	// Spec rounding distributes images per category; the total lands close
	// to but not exactly on the request.
	if n := len(arch.Infos); n < 350 || n > 400 {
		t.Errorf("infos = %d, want ~400", n)
	}
	if !bytes.Contains(log.Bytes(), []byte("RFS structure")) {
		t.Error("progress log missing")
	}
}
