package main

import (
	"bytes"
	"encoding/gob"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/store"
)

func TestBuildArchiveAndRoundTrip(t *testing.T) {
	arch, err := buildArchive(1, 10, 300, 20, 0.2, false, "str", false, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.Infos) == 0 || arch.RFS == nil {
		t.Fatal("empty archive")
	}
	// Encode/decode through a real file, then reconstruct the structure —
	// the qdbuild → qdquery/qdserve handoff.
	path := filepath.Join(t.TempDir(), "db.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(arch); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var loaded Archive
	if err := gob.NewDecoder(g).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	structure, err := rfs.FromSnapshot(loaded.RFS)
	if err != nil {
		t.Fatal(err)
	}
	if structure.Len() != len(arch.Infos) {
		t.Errorf("loaded %d images for %d infos", structure.Len(), len(arch.Infos))
	}
	if structure.RepCount() == 0 {
		t.Error("no representatives after reload")
	}
}

func TestBuildArchiveVectorMode(t *testing.T) {
	var log bytes.Buffer
	arch, err := buildArchive(2, 10, 400, 20, 0.1, true, "kmeans", false, slog.New(slog.NewTextHandler(&log, nil)))
	if err != nil {
		t.Fatal(err)
	}
	// Spec rounding distributes images per category; the total lands close
	// to but not exactly on the request.
	if n := len(arch.Infos); n < 350 || n > 400 {
		t.Errorf("infos = %d, want ~400", n)
	}
	if !bytes.Contains(log.Bytes(), []byte("RFS structure")) {
		t.Error("progress log missing")
	}
}

// TestBuildArchiveQuantized checks -quantize embeds an SQ8 quantizer the
// reader side (qdquery/qdserve) can adopt into the reconstructed structure,
// and that quantized searches then match the exact path exactly.
func TestBuildArchiveQuantized(t *testing.T) {
	arch, err := buildArchive(3, 8, 250, 20, 0.2, true, "str", true, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if arch.Quant == nil {
		t.Fatal("quantized build embedded no quantizer")
	}
	if want := len(arch.Infos) * arch.Quant.Dim; len(arch.Quant.Codes) != want {
		t.Fatalf("codes table is %d bytes, want %d", len(arch.Quant.Codes), want)
	}
	// The reader-side handoff: reconstruct, adopt, and compare searches.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(arch); err != nil {
		t.Fatal(err)
	}
	var loaded Archive
	if err := gob.NewDecoder(&buf).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	structure, err := rfs.FromSnapshot(loaded.RFS)
	if err != nil {
		t.Fatal(err)
	}
	qz, err := store.FromParts(*loaded.Quant)
	if err != nil {
		t.Fatal(err)
	}
	if err := structure.AdoptQuantized(qz); err != nil {
		t.Fatal(err)
	}
	tree := structure.Tree()
	for _, id := range []int{0, 100, len(arch.Infos) - 1} {
		q := structure.Point(rstar.ItemID(id))
		exact := tree.KNN(q, 10, nil)
		quant := tree.KNNQuant(q, 10, nil)
		if len(exact) != len(quant) {
			t.Fatalf("result sizes differ: %d vs %d", len(exact), len(quant))
		}
		for i := range exact {
			if exact[i].ID != quant[i].ID || exact[i].Dist != quant[i].Dist {
				t.Fatalf("id %d rank %d: exact (%d, %v) vs quant (%d, %v)",
					id, i, exact[i].ID, exact[i].Dist, quant[i].ID, quant[i].Dist)
			}
		}
	}
}
