package main

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qdcbir"
	"qdcbir/internal/experiments"
)

// writeLabeledCSV writes a clustered, labeled embedding file — the kind of
// externally computed vector set -import exists for. Each cluster is a
// subconcept ("emb/<letter>"), so the imported corpus carries real ground
// truth.
func writeLabeledCSV(t *testing.T, clusters, perCluster, dim int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	var sb strings.Builder
	for c := 0; c < clusters; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = rng.Float64() * 10
		}
		label := "emb/" + string(rune('a'+c))
		for i := 0; i < perCluster; i++ {
			sb.WriteString(label)
			for j := 0; j < dim; j++ {
				fmt.Fprintf(&sb, ",%.6f", center[j]+rng.NormFloat64()*0.05)
			}
			sb.WriteByte('\n')
		}
	}
	path := filepath.Join(t.TempDir(), "embeddings.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestImportRoundTrip drives the full import pipeline end to end: labeled
// CSV -> buildImported -> versioned archive on disk -> qdcbir.LoadFile ->
// QD-vs-Rocchio evaluation on the corpus-derived queries.
func TestImportRoundTrip(t *testing.T) {
	csvPath := writeLabeledCSV(t, 5, 24, 12)
	log := slog.New(slog.NewTextHandler(io.Discard, nil))

	sys, err := buildImported(csvPath, "", false, 1, 16, 0.2, "str", false, log)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 120 {
		t.Fatalf("imported %d vectors, want 120", sys.Len())
	}
	if got := sys.Corpus().Store().Dim(); got != 12 {
		t.Fatalf("dim %d, want 12", got)
	}

	out := filepath.Join(t.TempDir(), "emb.gob")
	if err := sys.SaveFile(out); err != nil {
		t.Fatal(err)
	}
	loaded, err := qdcbir.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != sys.Len() {
		t.Fatalf("loaded %d vectors, want %d", loaded.Len(), sys.Len())
	}

	// The acceptance loop: the reloaded archive must support the full
	// evaluation protocol on its own ground truth.
	ecfg := experiments.Config{
		Seed: 1, Users: 2, Rounds: 2,
		MaxFill: 16, TargetFill: 14, RepFraction: 0.2,
	}
	esys := experiments.BuildCorpusSystem(ecfg, loaded.Corpus())
	queries := experiments.CorpusQueries(loaded.Corpus(), 2, 4)
	if len(queries) != 4 {
		t.Fatalf("%d corpus-derived queries, want 4", len(queries))
	}
	rep := experiments.RunQDvsRocchio(esys, queries)
	if rep.Queries != 4 {
		t.Fatalf("evaluated %d queries, want 4", rep.Queries)
	}
	for _, tq := range rep.Techniques {
		if tq.Precision <= 0.3 {
			t.Errorf("%s precision %.2f suspiciously low on separated clusters", tq.Name, tq.Precision)
		}
	}
}

// TestImportFloat32FVecs checks the -f32 + .fvecs pairing: a float32-native
// file builds a float32-precision system whose archive reloads at the same
// precision.
func TestImportFloat32FVecs(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const n, dim = 150, 8
	buf := make([]byte, 0, n*(4+4*dim))
	for i := 0; i < n; i++ {
		buf = append(buf, byte(dim), 0, 0, 0)
		for j := 0; j < dim; j++ {
			bits := math.Float32bits(float32(float64(i%3) + rng.NormFloat64()*0.05))
			buf = append(buf, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
		}
	}
	path := filepath.Join(t.TempDir(), "vectors.fvecs")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))

	sys, err := buildImported(path, "", true, 2, 16, 0.2, "str", false, log)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Corpus().Store().Precision().String(); got != "f32" {
		t.Fatalf("precision %q, want f32", got)
	}
	out := filepath.Join(t.TempDir(), "emb32.gob")
	if err := sys.SaveFile(out); err != nil {
		t.Fatal(err)
	}
	loaded, err := qdcbir.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Corpus().Store().Precision().String(); got != "f32" {
		t.Fatalf("loaded precision %q, want f32", got)
	}
	res, err := loaded.KNN(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 || res[0].ID != 0 {
		t.Fatalf("self-query: %v", res)
	}
}
