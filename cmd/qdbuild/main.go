// Command qdbuild is the database builder of the prototype (§4): it
// generates a synthetic corpus, constructs the RFS structure over it, and
// persists both to disk for later sessions (cmd/qdquery) — the "building the
// RFS structure and populating the image database" step.
//
// With -import, qdbuild skips the synthetic generator and builds the
// structure over externally computed embedding vectors instead (JSON-lines,
// CSV, or .fvecs). Imported databases are written in the versioned system
// archive format (readable by qdcbir.LoadFile and qdquery alike) rather than
// the legacy gob below, because they must carry the corpus dimension and
// precision.
//
// Usage:
//
//	qdbuild -out db.gob -images 15000 -categories 150
//	qdbuild -out small.gob -images 1200 -categories 25 -capacity 24 -reps 0.2
//	qdbuild -out emb.gob -import vectors.fvecs -f32
//	qdbuild -out emb.gob -import labeled.csv -format csv
package main

import (
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"qdcbir"
	"qdcbir/internal/dataset"
	"qdcbir/internal/rfs"
	"qdcbir/internal/rstar"
	"qdcbir/internal/source"
	"qdcbir/internal/store"
)

// Archive is the on-disk form: ground truth plus the RFS snapshot (which
// carries the vectors). Quant is the optional SQ8 quantizer of a -quantize
// build; gob ignores unknown fields, so archives with it load fine in older
// readers and archives without it leave the pointer nil here.
type Archive struct {
	Infos []dataset.Info
	RFS   *rfs.Snapshot
	Quant *store.QuantParts
}

func main() {
	var (
		out        = flag.String("out", "qdcbir.gob", "output file")
		images     = flag.Int("images", 15000, "corpus size")
		categories = flag.Int("categories", 150, "number of categories")
		capacity   = flag.Int("capacity", 100, "R*-tree node capacity")
		reps       = flag.Float64("reps", 0.05, "representative fraction")
		seed       = flag.Int64("seed", 1, "random seed")
		vectors    = flag.Bool("vectors", false, "vector mode (skip rendering)")
		hierarchy  = flag.String("hierarchy", "str", "clustering backbone: str|insert|kmeans")
		quantize   = flag.Bool("quantize", false, "train and embed the SQ8 quantizer (8x smaller scan tables; identical results)")
		importPath = flag.String("import", "", "build over this embedding file (jsonl|csv|fvecs) instead of the synthetic generator; writes a versioned system archive")
		format     = flag.String("format", "", "embedding file format for -import: jsonl|csv|fvecs (empty = infer from extension)")
		f32        = flag.Bool("f32", false, "with -import: scan at float32 precision (natural for .fvecs, whose values are float32 already)")
		shards     = flag.Int("shards", 0, "also slice the build into N shard archives (<out>.shardI) for a qdrouter fleet")
		shardIdx   = flag.Int("shard", -1, "with -shards: write only shard I's archive (rebuilds deterministically, for per-shard build farms)")
		dynamic    = flag.Bool("dynamic", false, "write a dynamic segmented archive (v4): the build becomes one sealed segment and qdserve accepts online inserts/deletes against it")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *shards < 0 || *shards == 1 {
		fatal(fmt.Errorf("-shards must be 0 or >= 2, got %d", *shards))
	}
	if *shardIdx >= 0 && *shards == 0 {
		fatal(fmt.Errorf("-shard requires -shards"))
	}
	if *shardIdx >= *shards && *shards > 0 {
		fatal(fmt.Errorf("-shard %d out of range for %d shards", *shardIdx, *shards))
	}
	if *dynamic && *shards > 0 {
		fatal(fmt.Errorf("-dynamic and -shards are mutually exclusive (shard slices are immutable)"))
	}
	if *dynamic {
		// The dynamic archive needs the assembled system, so both corpus
		// flavors go through the versioned build path, then the build is
		// adopted as a single sealed segment.
		var sys *qdcbir.System
		var err error
		if *importPath != "" {
			sys, err = buildImported(*importPath, *format, *f32, *seed, *capacity, *reps, *hierarchy, *quantize, log)
		} else {
			sys, err = buildSystem(*seed, *categories, *images, *capacity, *reps, *vectors, *hierarchy, *quantize, log)
		}
		if err != nil {
			fatal(err)
		}
		dyn, err := qdcbir.OpenDynamic(sys, qdcbir.DynamicConfig{})
		if err != nil {
			fatal(err)
		}
		if err := dyn.SaveFile(*out); err != nil {
			fatal(err)
		}
		st := dyn.Stats()
		log.Info("wrote dynamic archive", "version", qdcbir.DynamicArchiveVersion,
			"live", st.Live, "segments", st.Segments, "epoch", st.Epoch)
		logWritten(log, *out)
		return
	}
	if *shards > 0 {
		// Shard slicing needs the assembled system, so both corpus flavors go
		// through the versioned build path.
		var sys *qdcbir.System
		var err error
		if *importPath != "" {
			sys, err = buildImported(*importPath, *format, *f32, *seed, *capacity, *reps, *hierarchy, *quantize, log)
		} else {
			sys, err = buildSystem(*seed, *categories, *images, *capacity, *reps, *vectors, *hierarchy, *quantize, log)
		}
		if err != nil {
			fatal(err)
		}
		if err := writeShards(sys, *out, *shards, *shardIdx, log); err != nil {
			fatal(err)
		}
		return
	}

	if *importPath != "" {
		sys, err := buildImported(*importPath, *format, *f32, *seed, *capacity, *reps, *hierarchy, *quantize, log)
		if err != nil {
			fatal(err)
		}
		if err := sys.SaveFile(*out); err != nil {
			fatal(err)
		}
		logWritten(log, *out)
		return
	}
	if *format != "" || *f32 {
		fatal(fmt.Errorf("-format and -f32 only apply with -import"))
	}

	arch, err := buildArchive(*seed, *categories, *images, *capacity, *reps, *vectors, *hierarchy, *quantize, log)
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(arch); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	logWritten(log, *out)
}

// buildSystem assembles the full System over the synthetic corpus (the
// sliceable equivalent of buildArchive).
func buildSystem(seed int64, categories, images, capacity int, reps float64, vectors bool, hierarchy string, quantize bool, log *slog.Logger) (*qdcbir.System, error) {
	log.Info("building system", "images", images, "categories", categories, "hierarchy", hierarchy)
	return qdcbir.Build(qdcbir.Config{
		Seed:         seed,
		Categories:   categories,
		Images:       images,
		NodeCapacity: capacity,
		RepFraction:  reps,
		Hierarchy:    hierarchy,
		Quantized:    quantize,
		VectorMode:   vectors,
	})
}

// shardPath derives shard i's archive path from the base output path:
// db.gob -> db.shard0.gob.
func shardPath(out string, i int) string {
	ext := ""
	base := out
	if dot := len(out) - len(filepath.Ext(out)); filepath.Ext(out) != "" {
		base, ext = out[:dot], out[dot:]
	}
	return fmt.Sprintf("%s.shard%d%s", base, i, ext)
}

// writeShards persists the fleet artifacts: the full single-node archive at
// out (the bit-exactness reference; skipped when only one shard was asked
// for) plus one shard archive per slice.
func writeShards(sys *qdcbir.System, out string, shards, only int, log *slog.Logger) error {
	if only >= 0 {
		a, err := qdcbir.SliceShard(context.Background(), sys, shards, only)
		if err != nil {
			return err
		}
		p := shardPath(out, only)
		if err := a.WriteFile(p); err != nil {
			return err
		}
		log.Info("wrote shard archive", "path", p, "shard", only, "of", shards,
			"local_images", a.Meta.LocalImages, "corpus_sig", fmt.Sprintf("%016x", a.Meta.CorpusSig))
		return nil
	}
	if err := sys.SaveFile(out); err != nil {
		return err
	}
	logWritten(log, out)
	archives, err := qdcbir.SliceShards(context.Background(), sys, shards)
	if err != nil {
		return err
	}
	for i, a := range archives {
		p := shardPath(out, i)
		if err := a.WriteFile(p); err != nil {
			return err
		}
		log.Info("wrote shard archive", "path", p, "shard", i, "of", shards,
			"local_images", a.Meta.LocalImages, "corpus_sig", fmt.Sprintf("%016x", a.Meta.CorpusSig))
	}
	return nil
}

func logWritten(log *slog.Logger, path string) {
	info, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	log.Info("wrote archive", "path", path, "size_mb", fmt.Sprintf("%.1f", float64(info.Size())/(1<<20)))
}

// buildImported ingests an embedding file and assembles the full system over
// it. Unlike buildArchive, the result is persisted as a versioned qdcbir
// archive (via System.SaveFile) so the corpus dimension and precision travel
// with the data.
func buildImported(path, format string, f32 bool, seed int64, capacity int, reps float64, hierarchy string, quantize bool, log *slog.Logger) (*qdcbir.System, error) {
	src, err := source.File(path, format)
	if err != nil {
		return nil, err
	}
	log.Info("importing vectors", "path", path, "format", src.Format(), "float32", f32)
	sys, err := qdcbir.BuildFromSource(qdcbir.Config{
		Seed:         seed,
		NodeCapacity: capacity,
		RepFraction:  reps,
		Hierarchy:    hierarchy,
		Quantized:    quantize,
		Float32:      f32,
	}, src)
	if err != nil {
		return nil, err
	}
	log.Info("imported system built",
		"images", sys.Len(),
		"dim", sys.Corpus().Store().Dim(),
		"precision", sys.Corpus().Store().Precision().String(),
		"height", sys.TreeHeight(),
		"representatives", sys.RepresentativeCount())
	return sys, nil
}

// buildArchive generates the corpus, builds the RFS structure, and packages
// both for persistence.
func buildArchive(seed int64, categories, images, capacity int, reps float64, vectors bool, hierarchy string, quantize bool, log *slog.Logger) (*Archive, error) {
	spec := dataset.SmallSpec(seed, categories, images)
	log.Info("generating corpus", "images", spec.TotalImages(), "categories", len(spec.Categories))
	var corpus *dataset.Corpus
	if vectors {
		corpus = dataset.BuildVectors(spec, 37, 0.02, seed+1)
	} else {
		corpus = dataset.Build(spec, dataset.Options{Seed: seed + 1})
	}
	if err := corpus.Validate(); err != nil {
		return nil, err
	}

	log.Info("building RFS structure", "hierarchy", hierarchy)
	structure := rfs.Build(corpus.Vectors, rfs.BuildConfig{
		RepFraction: reps,
		Tree:        rstar.Config{MaxFill: capacity},
		TargetFill:  capacity * 93 / 100,
		Hierarchy:   hierarchy,
		Seed:        seed + 2,
	})
	if err := structure.Validate(); err != nil {
		return nil, err
	}
	log.Info("tree built",
		"height", structure.Tree().Height(), "nodes", structure.Tree().NodeCount(),
		"representatives", structure.RepCount(),
		"rep_pct", fmt.Sprintf("%.1f", 100*float64(structure.RepCount())/float64(corpus.Len())))
	arch := &Archive{Infos: corpus.Infos, RFS: structure.Snapshot()}
	if quantize {
		qz, err := store.Quantize(corpus.Store())
		if err != nil {
			return nil, fmt.Errorf("quantize: %w", err)
		}
		parts := qz.Parts()
		arch.Quant = &parts
		log.Info("trained SQ8 quantizer",
			"codes_bytes", len(parts.Codes),
			"float_bytes", 8*len(parts.Codes))
	}
	return arch, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qdbuild:", err)
	os.Exit(1)
}
