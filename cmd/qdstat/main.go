// Command qdstat is the live operator view over a qdserve replica or a
// qdrouter fleet front: it polls the target's observability endpoints and
// renders one terminal frame per interval — request rate, per-endpoint
// p50/p95/p99 over the sliding windows, per-shard health and latency (router
// targets), the segmented engine's shape (dynamic servers): epoch, segment
// count, memtable rows, tombstone ratio, and compaction activity — and, when
// the target runs the admission scheduler, the load-shedding state: queue
// depth, shed counts, coalesced batches, and an [OVERLOAD] flag while load
// is actively being refused.
//
// Usage:
//
//	qdstat -target http://localhost:8390              # live view, 2s refresh
//	qdstat -target http://localhost:8400 -once        # one frame (scripts/CI)
//	qdstat -target http://localhost:8390 -interval 5s -window 5m
//
// The target kind is auto-detected from /v1/buildinfo: a body with a
// "replicas" field is a router (per-shard sections come from /v1/fleet/*),
// anything else is a single replica.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"qdcbir/internal/obs"
)

func main() {
	var (
		target   = flag.String("target", "http://localhost:8390", "qdserve or qdrouter base URL")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		window   = flag.String("window", "1m", "latency window to display (1m, 5m, 15m)")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	)
	flag.Parse()
	c := &client{
		base: strings.TrimRight(*target, "/"),
		http: &http.Client{Timeout: *timeout},
	}
	kind, err := c.detect()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qdstat: %s unreachable: %v\n", *target, err)
		os.Exit(1)
	}
	var prev *sample
	for {
		s, err := c.poll(kind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qdstat: poll failed: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		frame := render(s, prev, *window)
		if !*once {
			fmt.Print("\033[2J\033[H") // clear screen, home cursor
		}
		fmt.Print(frame)
		if *once {
			return
		}
		prev = s
		time.Sleep(*interval)
	}
}

// targetKind distinguishes what qdstat is watching.
type targetKind int

const (
	kindServer targetKind = iota
	kindRouter
)

// client polls one target's observability endpoints.
type client struct {
	base string
	http *http.Client
}

func (c *client) getJSON(path string, out interface{}) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// detect classifies the target by its /v1/buildinfo shape: only the router
// reports a replica count.
func (c *client) detect() (targetKind, error) {
	var bi map[string]json.RawMessage
	if err := c.getJSON("/v1/buildinfo", &bi); err != nil {
		return kindServer, err
	}
	if _, ok := bi["replicas"]; ok {
		return kindRouter, nil
	}
	return kindServer, nil
}

// Wire shapes — the subsets of the server/router response bodies qdstat
// reads, decoded structurally so qdstat never imports the serving tiers.

type latencyBody struct {
	Windows []string          `json:"windows"`
	Digests obs.LatencyReport `json:"digests"`
}

type statsBody struct {
	Metrics  obs.Snapshot  `json:"metrics"`
	Shards   []shardStatus `json:"shards"`
	Requests uint64        `json:"requests"`
}

type shardStatus struct {
	Shard    int `json:"shard"`
	Replicas []struct {
		URL      string `json:"url"`
		Alive    bool   `json:"alive"`
		Requests uint64 `json:"requests"`
		Errors   uint64 `json:"errors"`
	} `json:"replicas"`
}

type buildInfoBody struct {
	Images      int    `json:"images"`
	Shards      int    `json:"shards"`
	Replicas    int    `json:"replicas"`
	Precision   string `json:"precision"`
	Dynamic     bool   `json:"dynamic"`
	Epoch       uint64 `json:"epoch"`
	Segments    int    `json:"segments"`
	MemRows     int    `json:"mem_rows"`
	Tombstones  int    `json:"tombstones"`
	Seals       uint64 `json:"seals"`
	Compactions uint64 `json:"compactions"`
}

type fleetLatencyBody struct {
	Replicas int               `json:"replicas"`
	Errors   []string          `json:"errors"`
	Fleet    obs.LatencyReport `json:"fleet"`
	Shards   []struct {
		Shard   int               `json:"shard"`
		Digests obs.LatencyReport `json:"digests"`
	} `json:"shards"`
}

type slowBody struct {
	Slowest []obs.SlowQuery `json:"slowest"`
}

// sample is one poll of the target, timestamped for rate computation.
type sample struct {
	kind  targetKind
	at    time.Time
	build buildInfoBody
	stats statsBody
	lat   latencyBody
	fleet *fleetLatencyBody // router only
	slow  []obs.SlowQuery
}

// poll gathers one sample. The slow log and fleet digests are best-effort: a
// missing endpoint (older replica) degrades the frame, it does not kill it.
func (c *client) poll(kind targetKind) (*sample, error) {
	s := &sample{kind: kind, at: time.Now()}
	if err := c.getJSON("/v1/buildinfo", &s.build); err != nil {
		return nil, err
	}
	if err := c.getJSON("/v1/stats", &s.stats); err != nil {
		return nil, err
	}
	if err := c.getJSON("/v1/latency", &s.lat); err != nil {
		return nil, err
	}
	if kind == kindRouter {
		var fl fleetLatencyBody
		if err := c.getJSON("/v1/fleet/latency", &fl); err == nil {
			s.fleet = &fl
		}
	}
	var sb slowBody
	if err := c.getJSON("/v1/slow", &sb); err == nil {
		s.slow = sb.Slowest
	}
	return s, nil
}

// ---- rendering ----

// requestCount extracts the sample's cumulative request counter (the QPS
// numerator differs between tiers).
func requestCount(s *sample) uint64 {
	if s.kind == kindRouter {
		return s.stats.Metrics.Counters["qd_router_requests_total"]
	}
	return s.stats.Metrics.Counters["qd_http_requests_total"]
}

// fmtDur renders seconds at operator precision: µs under a millisecond, ms
// under a second, seconds above.
func fmtDur(sec float64) string {
	switch {
	case sec <= 0:
		return "-"
	case sec < 0.001:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// digestRows renders one latency table: name, count, p50/p95/p99 for the
// chosen window, skipping digests with no samples in it.
func digestRows(b *strings.Builder, rep obs.LatencyReport, window, indent string) {
	names := make([]string, 0, len(rep))
	for name := range rep {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st, ok := rep[name][window]
		if !ok || st.Count == 0 {
			continue
		}
		fmt.Fprintf(b, "%s%-28s %8d  %9s %9s %9s\n",
			indent, name, st.Count, fmtDur(st.P50), fmtDur(st.P95), fmtDur(st.P99))
	}
}

// admissionLine renders the load-shedding view: a replica's scheduler state
// (queue depth, inflight, shed counts, coalesced batches) or the router's
// fleet-facing view (single-flight joins, shard sheds observed). Targets
// without the scheduler metrics render nothing. The [OVERLOAD] flag fires
// while load is actively being refused — sheds advanced since the previous
// sample, or requests are queued right now.
func admissionLine(b *strings.Builder, s, prev *sample) {
	ctrs := s.stats.Metrics.Counters
	if s.kind == kindRouter {
		joins, okJ := ctrs["qd_router_singleflight_total"]
		sheds, okS := ctrs["qd_router_sheds_total"]
		if !okJ && !okS {
			return
		}
		flag := ""
		if prev != nil && sheds > prev.stats.Metrics.Counters["qd_router_sheds_total"] {
			flag = "  [OVERLOAD]"
		}
		fmt.Fprintf(b, "admission: %d knn single-flight joins, %d shard sheds observed%s\n", joins, sheds, flag)
		return
	}
	sheds, ok := ctrs["qd_sched_shed_total"]
	if !ok {
		return
	}
	gs := s.stats.Metrics.Gauges
	depth := gs["qd_sched_queue_depth"]
	overload := depth > 0
	if prev != nil && sheds > prev.stats.Metrics.Counters["qd_sched_shed_total"] {
		overload = true
	}
	flag := ""
	if overload {
		flag = "  [OVERLOAD]"
	}
	fmt.Fprintf(b, "admission: queue %d, inflight %d, %d shed, %d queued-deadline, %d batches (%d coalesced queries)%s\n",
		depth, gs["qd_sched_inflight"], sheds, ctrs["qd_sched_deadline_queued_total"],
		ctrs["qd_sched_batches_total"], ctrs["qd_sched_batched_queries_total"], flag)
}

// render lays out one frame. prev (the previous sample) turns cumulative
// request counters into a rate; nil renders "-" for QPS.
func render(s *sample, prev *sample, window string) string {
	var b strings.Builder
	title := "replica"
	if s.kind == kindRouter {
		title = "router"
	}
	fmt.Fprintf(&b, "qdstat — %s  %s\n", title, s.at.Format("15:04:05"))

	qps := "-"
	if prev != nil {
		dt := s.at.Sub(prev.at).Seconds()
		if dn := requestCount(s) - requestCount(prev); dt > 0 {
			qps = fmt.Sprintf("%.1f", float64(dn)/dt)
		}
	}
	switch s.kind {
	case kindRouter:
		fmt.Fprintf(&b, "fleet: %d shards, %d replicas, %d images (%s)   qps %s\n",
			s.build.Shards, s.build.Replicas, s.build.Images, s.build.Precision, qps)
	default:
		fmt.Fprintf(&b, "corpus: %d images (%s)   qps %s\n", s.build.Images, s.build.Precision, qps)
	}

	if s.build.Dynamic {
		tombRatio := 0.0
		if total := s.build.Images + s.build.Tombstones; total > 0 {
			tombRatio = float64(s.build.Tombstones) / float64(total)
		}
		compacting := ""
		if prev != nil && s.build.Compactions > prev.build.Compactions {
			compacting = "  [compacting]"
		}
		fmt.Fprintf(&b, "engine: epoch %d, %d segments, %d memtable rows, tombstones %.1f%%, %d seals, %d compactions%s\n",
			s.build.Epoch, s.build.Segments, s.build.MemRows, tombRatio*100,
			s.build.Seals, s.build.Compactions, compacting)
	}

	admissionLine(&b, s, prev)

	fmt.Fprintf(&b, "\nlatency (%s window)\n", window)
	fmt.Fprintf(&b, "  %-28s %8s  %9s %9s %9s\n", "digest", "count", "p50", "p95", "p99")
	digestRows(&b, s.lat.Digests, window, "  ")

	if s.kind == kindRouter {
		fmt.Fprintf(&b, "\nshards\n")
		for _, ss := range s.stats.Shards {
			live, total := 0, len(ss.Replicas)
			var reqs, errs uint64
			for _, rep := range ss.Replicas {
				if rep.Alive {
					live++
				}
				reqs += rep.Requests
				errs += rep.Errors
			}
			health := "up"
			switch {
			case live == 0:
				health = "DOWN"
			case live < total:
				health = "degraded"
			}
			p99 := "-"
			if s.fleet != nil {
				for _, fs := range s.fleet.Shards {
					if fs.Shard != ss.Shard {
						continue
					}
					// The replica's own view of its query endpoint.
					if st, ok := fs.Digests["endpoint:/v1/shard/search"][window]; ok && st.Count > 0 {
						p99 = fmtDur(st.P99)
					}
				}
			}
			fmt.Fprintf(&b, "  shard %-3d %-9s %d/%d replicas  %8d reqs  %5d errs  search p99 %s\n",
				ss.Shard, health, live, total, reqs, errs, p99)
		}
		if s.fleet != nil && len(s.fleet.Errors) > 0 {
			fmt.Fprintf(&b, "  scrape errors: %d (first: %s)\n", len(s.fleet.Errors), s.fleet.Errors[0])
		}
	}

	if len(s.slow) > 0 {
		fmt.Fprintf(&b, "\nslowest requests\n")
		n := len(s.slow)
		if n > 5 {
			n = 5
		}
		for _, q := range s.slow[:n] {
			trace := ""
			if q.TraceID != 0 {
				trace = fmt.Sprintf("  trace %d", q.TraceID)
			}
			fmt.Fprintf(&b, "  %9s  %-24s %3d  %s%s\n",
				fmtDur(float64(q.DurationNS)/1e9), q.Endpoint, q.Status, q.RequestID, trace)
		}
	}
	return b.String()
}
