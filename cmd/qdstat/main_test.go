package main

import (
	"strings"
	"testing"
	"time"

	"qdcbir/internal/obs"
)

func routerSample(at time.Time, requests uint64) *sample {
	return &sample{
		kind: kindRouter,
		at:   at,
		build: buildInfoBody{
			Images: 600, Shards: 3, Replicas: 4, Precision: "float32",
		},
		stats: statsBody{
			Metrics: obs.Snapshot{
				Counters: map[string]uint64{
					"qd_router_requests_total":     requests,
					"qd_router_singleflight_total": 12,
					"qd_router_sheds_total":        requests / 50, // advances with load
				},
			},
			Shards: []shardStatus{
				{Shard: 0, Replicas: []struct {
					URL      string `json:"url"`
					Alive    bool   `json:"alive"`
					Requests uint64 `json:"requests"`
					Errors   uint64 `json:"errors"`
				}{
					{URL: "http://a", Alive: true, Requests: 40},
					{URL: "http://b", Alive: false, Requests: 2, Errors: 2},
				}},
				{Shard: 1, Replicas: []struct {
					URL      string `json:"url"`
					Alive    bool   `json:"alive"`
					Requests uint64 `json:"requests"`
					Errors   uint64 `json:"errors"`
				}{
					{URL: "http://c", Alive: true, Requests: 41},
				}},
			},
		},
		lat: latencyBody{
			Windows: []string{"1m", "5m", "15m"},
			Digests: obs.LatencyReport{
				"endpoint:/v1/knn": {
					"1m": {Count: 120, P50: 0.0021, P95: 0.0093, P99: 0.0147},
				},
				"router:fanout": {
					"1m": {Count: 120, P50: 0.0004, P95: 0.0011, P99: 0.0019},
				},
				"quiet:digest": {
					"1m": {Count: 0},
				},
			},
		},
		fleet: &fleetLatencyBody{
			Replicas: 3,
			Errors:   []string{"http://b: connection refused"},
			Shards: []struct {
				Shard   int               `json:"shard"`
				Digests obs.LatencyReport `json:"digests"`
			}{
				{Shard: 0, Digests: obs.LatencyReport{
					"endpoint:/v1/shard/search": {"1m": {Count: 40, P99: 0.0042}},
				}},
			},
		},
		slow: []obs.SlowQuery{
			{RequestID: "rt-9", Endpoint: "/v1/query", Status: 200, DurationNS: 31_500_000, TraceID: 7},
		},
	}
}

// TestRenderRouterFrame pins the operator-facing layout: fleet header with a
// QPS computed from counter deltas, the latency table with empty digests
// skipped, per-shard health with degraded detection and fleet-scraped p99,
// scrape-error surfacing, and the slow-request tail with trace references.
func TestRenderRouterFrame(t *testing.T) {
	now := time.Now()
	prev := routerSample(now.Add(-2*time.Second), 100)
	cur := routerSample(now, 150)

	frame := render(cur, prev, "1m")
	for _, want := range []string{
		"qdstat — router",
		"fleet: 3 shards, 4 replicas, 600 images (float32)   qps 25.0",
		"endpoint:/v1/knn",
		"router:fanout",
		"admission: 12 knn single-flight joins, 3 shard sheds observed  [OVERLOAD]",
		"shard 0   degraded  1/2 replicas",
		"search p99 4.2ms",
		"shard 1   up        1/1 replicas",
		"scrape errors: 1 (first: http://b: connection refused)",
		"slowest requests",
		"/v1/query",
		"trace 7",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "quiet:digest") {
		t.Fatalf("empty digest rendered:\n%s", frame)
	}
	// First frame has no previous sample: the rate renders as "-".
	first := render(cur, nil, "1m")
	if !strings.Contains(first, "qps -") {
		t.Fatalf("first frame must show no rate:\n%s", first)
	}
}

// TestRenderDynamicEngineLine pins the segmented-engine line a dynamic replica
// adds: epoch, segment count, memtable rows, tombstone ratio, and the
// [compacting] flag derived from the compaction-counter delta.
func TestRenderDynamicEngineLine(t *testing.T) {
	mk := func(compactions uint64) *sample {
		return &sample{
			kind: kindServer,
			at:   time.Now(),
			build: buildInfoBody{
				Images: 900, Precision: "float32",
				Dynamic: true, Epoch: 12, Segments: 5, MemRows: 137,
				Tombstones: 100, Seals: 9, Compactions: compactions,
			},
			stats: statsBody{Metrics: obs.Snapshot{
				Counters: map[string]uint64{"qd_http_requests_total": 10},
			}},
		}
	}
	prev, cur := mk(3), mk(4)
	frame := render(cur, prev, "1m")
	for _, want := range []string{
		"qdstat — replica",
		"corpus: 900 images (float32)",
		"engine: epoch 12, 5 segments, 137 memtable rows, tombstones 10.0%, 9 seals, 4 compactions  [compacting]",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// No compaction delta → flag absent.
	if steady := render(cur, mk(4), "1m"); strings.Contains(steady, "[compacting]") {
		t.Fatalf("steady frame flagged compacting:\n%s", steady)
	}
}

// TestRenderAdmissionLine pins the replica-side scheduler view: queue depth
// and inflight gauges, shed/deadline/batch counters, and the [OVERLOAD] flag
// raised by a shed delta or a non-empty queue — and absent entirely on
// replicas without a scheduler.
func TestRenderAdmissionLine(t *testing.T) {
	mk := func(sheds uint64, depth int64) *sample {
		return &sample{
			kind:  kindServer,
			at:    time.Now(),
			build: buildInfoBody{Images: 500, Precision: "f64"},
			stats: statsBody{Metrics: obs.Snapshot{
				Counters: map[string]uint64{
					"qd_http_requests_total":         10,
					"qd_sched_shed_total":            sheds,
					"qd_sched_deadline_queued_total": 2,
					"qd_sched_batches_total":         30,
					"qd_sched_batched_queries_total": 96,
				},
				Gauges: map[string]int64{
					"qd_sched_queue_depth": depth,
					"qd_sched_inflight":    4,
				},
			}},
		}
	}
	frame := render(mk(8, 0), mk(5, 0), "1m")
	want := "admission: queue 0, inflight 4, 8 shed, 2 queued-deadline, 30 batches (96 coalesced queries)  [OVERLOAD]"
	if !strings.Contains(frame, want) {
		t.Fatalf("frame missing %q:\n%s", want, frame)
	}
	// Steady state (no shed delta, empty queue): no flag.
	if steady := render(mk(8, 0), mk(8, 0), "1m"); strings.Contains(steady, "[OVERLOAD]") {
		t.Fatalf("steady frame flagged overload:\n%s", steady)
	}
	// A non-empty queue alone raises the flag.
	if queued := render(mk(8, 3), mk(8, 0), "1m"); !strings.Contains(queued, "queue 3") || !strings.Contains(queued, "[OVERLOAD]") {
		t.Fatalf("queued frame missing flag:\n%s", queued)
	}
	// No scheduler metrics → no admission line.
	plain := &sample{kind: kindServer, at: time.Now(), stats: statsBody{Metrics: obs.Snapshot{
		Counters: map[string]uint64{"qd_http_requests_total": 10},
	}}}
	if f := render(plain, nil, "1m"); strings.Contains(f, "admission:") {
		t.Fatalf("scheduler-less frame rendered admission line:\n%s", f)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[float64]string{
		0:        "-",
		0.000045: "45µs",
		0.0042:   "4.2ms",
		1.53:     "1.53s",
	}
	for in, want := range cases {
		if got := fmtDur(in); got != want {
			t.Fatalf("fmtDur(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRequestCount(t *testing.T) {
	s := &sample{kind: kindRouter, stats: statsBody{Metrics: obs.Snapshot{
		Counters: map[string]uint64{
			"qd_router_requests_total": 7,
			"qd_http_requests_total":   99,
		},
	}}}
	if got := requestCount(s); got != 7 {
		t.Fatalf("router counter: %d", got)
	}
	s.kind = kindServer
	if got := requestCount(s); got != 99 {
		t.Fatalf("server counter: %d", got)
	}
}
