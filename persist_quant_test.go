package qdcbir

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// quantSystem builds a small quantized vector-mode system for archive tests.
func quantSystem(t *testing.T) *System {
	t.Helper()
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 400
	cfg.Quantized = true
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Quantized() {
		t.Fatal("quantized build fell back to exact scoring")
	}
	return sys
}

// knnIDs runs a global k-NN and returns the result IDs.
func knnIDs(t *testing.T, sys *System, example, k int) []int {
	t.Helper()
	res, err := sys.KNN(example, k)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	return ids
}

// TestArchiveV2QuantizedRoundTrip pins the v2 quantizer sidecar: a quantized
// system's archive carries its trained quantizer, and the loaded system
// adopts it (identical parameters, no retraining) and retrieves identically.
func TestArchiveV2QuantizedRoundTrip(t *testing.T) {
	sys := quantSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Quantized() {
		t.Fatal("loaded system lost quantization")
	}
	if !loaded.Config().Quantized {
		t.Fatal("loaded config lost the Quantized flag")
	}
	if !reflect.DeepEqual(sys.quant.Parts(), loaded.quant.Parts()) {
		t.Fatal("loaded quantizer differs from the saved one")
	}
	for _, example := range []int{0, 7, 123} {
		a, b := knnIDs(t, sys, example, 15), knnIDs(t, loaded, example, 15)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k-NN diverged across the round trip for image %d: %v vs %v", example, a, b)
		}
	}
}

// TestArchiveV1LoadCompat writes a version-1 archive (the pre-quantization
// format: v1 header, quantizer-free payload) and checks this build still
// loads it and answers identically.
func TestArchiveV1LoadCompat(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 400
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.Write(archiveHeader(archiveVersionV1)); err != nil {
		t.Fatal(err)
	}
	body := sys.archiveBody()
	if err := gob.NewEncoder(&buf).Encode(&body); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 archive rejected: %v", err)
	}
	if loaded.Quantized() {
		t.Fatal("v1 archive of an exact system loaded quantized")
	}
	if !reflect.DeepEqual(knnIDs(t, sys, 9, 20), knnIDs(t, loaded, 9, 20)) {
		t.Fatal("k-NN diverged across the v1 round trip")
	}
}

// TestArchiveV1QuantizedConfigRetrains covers a v1 archive whose saved
// config asks for quantization (no persisted quantizer existed in v1): the
// load retrains one, so the system comes back quantized anyway.
func TestArchiveV1QuantizedConfigRetrains(t *testing.T) {
	sys := quantSystem(t)
	var buf bytes.Buffer
	if _, err := buf.Write(archiveHeader(archiveVersionV1)); err != nil {
		t.Fatal(err)
	}
	body := sys.archiveBody()
	if err := gob.NewEncoder(&buf).Encode(&body); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 archive rejected: %v", err)
	}
	if !loaded.Quantized() {
		t.Fatal("quantized config did not retrain on v1 load")
	}
	if !reflect.DeepEqual(sys.quant.Parts(), loaded.quant.Parts()) {
		t.Fatal("retrained quantizer differs from the original training")
	}
	if !reflect.DeepEqual(knnIDs(t, sys, 42, 15), knnIDs(t, loaded, 42, 15)) {
		t.Fatal("k-NN diverged across the v1 round trip")
	}
}

// TestArchiveV0LoadCompat writes a legacy bare-gob archive and checks this
// build still loads it and answers identically.
func TestArchiveV0LoadCompat(t *testing.T) {
	cfg := SmallConfig()
	cfg.VectorMode = true
	cfg.Images = 400
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy := archive{
		Cfg:            sys.cfg,
		Infos:          sys.corpus.Infos,
		RFS:            sys.rfs.Snapshot(),
		ChannelVectors: sys.corpus.ChannelVectors,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v0 archive rejected: %v", err)
	}
	if !reflect.DeepEqual(knnIDs(t, sys, 3, 20), knnIDs(t, loaded, 3, 20)) {
		t.Fatal("k-NN diverged across the v0 round trip")
	}
}

// TestLoadHeaderErrors pins the load diagnostics over damaged and
// future-versioned archive headers: errors name what was found and, for
// version mismatches, the supported range.
func TestLoadHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want []string // substrings the error must contain
	}{
		{"empty", nil, []string{"decode"}},
		{"truncated 1 of 4", []byte{0xD1}, []string{"truncated archive header", "1 byte"}},
		{"truncated 2 of 4", []byte{0xD1, 'Q'}, []string{"truncated archive header", "2 byte"}},
		{"truncated 3 of 4", []byte{0xD1, 'Q', 'D'}, []string{"truncated archive header", "3 byte"}},
		{"corrupt prefix", []byte{0xD1, 'X', 'D', 0x02, 1, 2, 3}, []string{"corrupt archive header"}},
		{"version 0 headered", []byte{0xD1, 'Q', 'D', 0x00, 1, 2, 3}, []string{"version 0 unsupported", "versions 0 through 3"}},
		{"version 7", []byte{0xD1, 'Q', 'D', 0x07, 1, 2, 3}, []string{"version 7 unsupported", "versions 0 through 3"}},
		{"version 255", []byte{0xD1, 'Q', 'D', 0xFF, 1, 2, 3}, []string{"version 255 unsupported", "versions 0 through 3"}},
		{"v2 header, empty payload", archiveHeader(archiveVersionV2), []string{"decode"}},
		{"v2 header, garbage payload", append(archiveHeader(archiveVersionV2), []byte("garbage")...), []string{"decode"}},
		{"v3 header, empty payload", archiveHeader(archiveVersionV3), []string{"decode"}},
		{"v3 header, garbage payload", append(archiveHeader(archiveVersionV3), []byte("garbage")...), []string{"decode"}},
		{"v3 header, truncated gob", append(archiveHeader(archiveVersionV3), 0x3F, 0xFF), []string{"decode"}},
		{"v3 corrupt prefix", []byte{0xD1, 'Q', 'X', 0x03, 1, 2, 3}, []string{"corrupt archive header"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("damaged archive accepted")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// goldenV2ArchivePath is the committed v2 fixture; TestGoldenArchiveV2
// regenerates it when run with UPDATE_GOLDEN_ARCHIVE=1.
const goldenV2ArchivePath = "testdata/archive_v2_quantized.gob"

// TestGoldenArchiveV2 loads a version-2 archive committed to testdata —
// produced by an earlier build of Save — proving on-disk archives survive
// future code changes (not just in-process round trips). The fixture is a
// quantized vector-mode system; the test checks the header version, the
// adopted quantizer, and a pinned retrieval result.
func TestGoldenArchiveV2(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN_ARCHIVE") != "" {
		// Save writes version 3 now, so the historical v2 fixture is encoded
		// explicitly — exactly the bytes the v2-era Save produced.
		sys := quantSystem(t)
		body := sys.archiveBody()
		parts := sys.quant.Parts()
		a := archiveV2{
			Cfg:         body.Cfg,
			Infos:       body.Infos,
			Dim:         body.Dim,
			Points:      body.Points,
			HasChannels: body.HasChannels,
			Channels:    body.Channels,
			RFS:         body.RFS,
			NormMin:     body.NormMin,
			NormMax:     body.NormMax,
			Quant:       &parts,
		}
		if err := os.MkdirAll(filepath.Dir(goldenV2ArchivePath), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.Write(archiveHeader(archiveVersionV2))
		if err := gob.NewEncoder(&buf).Encode(&a); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenV2ArchivePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenV2ArchivePath)
	}
	raw, err := os.ReadFile(goldenV2ArchivePath)
	if err != nil {
		t.Fatalf("golden fixture missing (set UPDATE_GOLDEN_ARCHIVE=1 to generate): %v", err)
	}
	if !bytes.HasPrefix(raw, archiveHeader(archiveVersionV2)) {
		t.Fatalf("fixture does not start with the v2 magic: % x", raw[:4])
	}
	loaded, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden v2 archive rejected: %v", err)
	}
	if !loaded.Quantized() {
		t.Fatal("golden archive lost quantization")
	}
	// The fixture was built by quantSystem's deterministic config, so a
	// fresh build must agree with it exactly.
	fresh := quantSystem(t)
	if loaded.Len() != fresh.Len() {
		t.Fatalf("fixture corpus size %d, want %d", loaded.Len(), fresh.Len())
	}
	if !reflect.DeepEqual(fresh.quant.Parts(), loaded.quant.Parts()) {
		t.Fatal("fixture quantizer differs from a fresh training")
	}
	if !reflect.DeepEqual(knnIDs(t, fresh, 11, 10), knnIDs(t, loaded, 11, 10)) {
		t.Fatal("fixture retrieval diverged from a fresh build")
	}
}
