package qdcbir

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"qdcbir/internal/baseline"
	"qdcbir/internal/disk"
	"qdcbir/internal/rstar"
)

// The golden fixtures pin the system's observable behaviour — retrieval
// output, similarity-score bits, and simulated I/O counts — across data-layer
// refactors. testdata/golden_results.json and testdata/archive_v0.gob were
// generated BEFORE the flat feature-store refactor; the tests assert the
// store-backed engine reproduces them byte-for-byte.
//
// Regenerate (only when behaviour is intentionally changed):
//
//	go test -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden fixtures")

const (
	goldenResultsPath = "testdata/golden_results.json"
	goldenArchivePath = "testdata/archive_v0.gob"
)

// goldenConfig is the fixture system: image mode with MV channels so the
// per-channel data path is pinned too.
func goldenConfig() Config {
	return Config{
		Seed:         7,
		Categories:   12,
		Images:       400,
		NodeCapacity: 24,
		RepFraction:  0.2,
		WithChannels: true,
	}
}

// goldenVectorConfig is the vector-mode fixture (the Fig 10/11 path).
func goldenVectorConfig() Config {
	return Config{
		Seed:         11,
		Categories:   15,
		Images:       900,
		NodeCapacity: 24,
		RepFraction:  0.2,
		VectorMode:   true,
	}
}

// scoreBits serializes similarity scores exactly (float64 bit patterns), so
// the comparison is byte-identical, not epsilon-close.
func scoreBits(scores []float64) []string {
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = fmt.Sprintf("%016x", math.Float64bits(s))
	}
	return out
}

type goldenQuery struct {
	IDs    []int    `json:"ids"`
	Scores []string `json:"scores,omitempty"`
}

type goldenSession struct {
	Marked        []int    `json:"marked"`
	ResultIDs     []int    `json:"result_ids"`
	RankScores    []string `json:"rank_scores"`
	FeedbackReads uint64   `json:"feedback_reads"`
	FinalReads    uint64   `json:"final_reads"`
	Expansions    int      `json:"expansions"`
}

type goldenFile struct {
	KNN         goldenQuery            `json:"knn"`
	QBE         goldenQuery            `json:"qbe"`
	QBEReads    uint64                 `json:"qbe_reads"`
	Session     goldenSession          `json:"session"`
	VecSession  goldenSession          `json:"vec_session"`
	VecWeighted goldenQuery            `json:"vec_weighted"`
	Baselines   map[string]goldenQuery `json:"baselines"`
}

// runGoldenSession drives one deterministic feedback session: three rounds of
// browsing with every-other-candidate marks, then Finalize.
func runGoldenSession(sys *System, seed int64, weighted bool) goldenSession {
	sess := sys.NewSession(seed)
	var g goldenSession
	for round := 0; round < 3; round++ {
		var marks []int
		for d := 0; d < 4; d++ {
			for i, c := range sess.Candidates() {
				if i%2 == 0 && len(marks) < 5 {
					marks = append(marks, c.ID)
				}
			}
		}
		if err := sess.Feedback(marks); err != nil {
			panic(err)
		}
		g.Marked = append(g.Marked, marks...)
	}
	if weighted {
		if err := sess.WeightFamily(FamilyColor, 2.5); err != nil {
			panic(err)
		}
	}
	res, err := sess.Finalize(30)
	if err != nil {
		panic(err)
	}
	g.ResultIDs = res.IDs()
	var ranks []float64
	for _, grp := range res.Groups {
		ranks = append(ranks, grp.RankScore)
	}
	g.RankScores = scoreBits(ranks)
	st := sess.Stats()
	g.FeedbackReads = st.FeedbackReads
	g.FinalReads = st.FinalReads
	g.Expansions = st.Expansions
	return g
}

// buildGolden produces the full golden record with the current code.
func buildGolden(t *testing.T) *goldenFile {
	t.Helper()
	sys, err := Build(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	vsys, err := Build(goldenVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := &goldenFile{Baselines: map[string]goldenQuery{}}

	// Plain global k-NN through the index.
	knn, err := sys.KNN(3, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range knn {
		g.KNN.IDs = append(g.KNN.IDs, s.ID)
		g.KNN.Scores = append(g.KNN.Scores, scoreBits([]float64{s.Score})[0])
	}

	// Query-by-examples (the server-side half of the client/server split).
	var examples []rstar.ItemID
	keys := sys.Corpus().Subconcepts()
	sort.Strings(keys)
	for i, key := range keys {
		if i >= 3 {
			break
		}
		ids := sys.Corpus().SubconceptIDs(key)
		for _, id := range ids[:2] {
			examples = append(examples, rstar.ItemID(id))
		}
	}
	res, st, err := sys.engine.QueryByExamples(examples, 40, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.IDs() {
		g.QBE.IDs = append(g.QBE.IDs, id)
	}
	g.QBEReads = st.FinalReads

	// Full feedback sessions: image mode plain, vector mode plain + weighted.
	g.Session = runGoldenSession(sys, 99, false)
	g.VecSession = runGoldenSession(vsys, 42, false)
	wsess := runGoldenSession(vsys, 43, true)
	g.VecWeighted = goldenQuery{IDs: wsess.ResultIDs, Scores: wsess.RankScores}

	// Baselines: two rounds of search+feedback each, recording both searches.
	rets := goldenBaselines(t, sys)
	names := make([]string, 0, len(rets))
	for name := range rets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ret := rets[name]
		first := ret.Search(20)
		ret.Feedback(first[:6])
		second := ret.Search(20)
		g.Baselines[name] = goldenQuery{IDs: append(append([]int{}, first...), second...)}
	}
	return g
}

// goldenBaselines constructs all six comparison retrievers against the image
// fixture, keyed by a stable name.
func goldenBaselines(t *testing.T, sys *System) map[string]baseline.FeedbackRetriever {
	t.Helper()
	const queryImage = 5
	st := sys.Corpus().Store()
	mvc, err := baseline.NewMVChannels(sys.Corpus().ChannelStores(), queryImage)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]baseline.FeedbackRetriever{
		"plain":    baseline.NewPlainKNN(st, queryImage),
		"qpm":      baseline.NewQPM(st, queryImage),
		"treeknn":  baseline.NewTreeKNN(sys.RFS().Tree(), st, queryImage, &disk.Counter{}),
		"mpq":      baseline.NewMPQ(st, queryImage, 4, rand.New(rand.NewSource(17))),
		"qcluster": baseline.NewQcluster(st, queryImage, 4, rand.New(rand.NewSource(18))),
		"mv-chan":  mvc,
		"mv-sub":   baseline.NewMVSubspaces(st, queryImage),
	}
}

func TestGoldenResults(t *testing.T) {
	got := buildGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenResultsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenResultsPath)
		return
	}
	data, err := os.ReadFile(goldenResultsPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.MarshalIndent(got, "", "  ")
	wantJSON, _ := json.MarshalIndent(&want, "", "  ")
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("behaviour diverged from pre-refactor golden fixture:\n--- want\n%s\n--- got\n%s", wantJSON, gotJSON)
	}
}

// TestGoldenArchiveV0 asserts a pre-refactor (version-0 gob) archive still
// loads and answers queries identically to a freshly built system.
func TestGoldenArchiveV0(t *testing.T) {
	if *updateGolden {
		sys, err := Build(goldenConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := sys.SaveFile(goldenArchivePath); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenArchivePath)
		return
	}
	loaded, err := LoadFile(goldenArchivePath)
	if err != nil {
		t.Fatalf("version-0 archive no longer loads: %v", err)
	}
	fresh, err := Build(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != fresh.Len() || loaded.TreeHeight() != fresh.TreeHeight() ||
		loaded.RepresentativeCount() != fresh.RepresentativeCount() {
		t.Fatalf("v0 archive shape: len %d/%d height %d/%d reps %d/%d",
			loaded.Len(), fresh.Len(), loaded.TreeHeight(), fresh.TreeHeight(),
			loaded.RepresentativeCount(), fresh.RepresentativeCount())
	}
	// The MV channel tables must survive (including the deduped original).
	if loaded.Corpus().ChannelVectors == nil {
		t.Fatal("v0 archive lost channel vectors")
	}
	for _, sys := range []*System{loaded, fresh} {
		if got := len(sys.Corpus().ChannelVectors); got != 4 {
			t.Fatalf("%d channels after load", got)
		}
	}
	a := runGoldenSession(loaded, 99, false)
	b := runGoldenSession(fresh, 99, false)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("v0-archive session diverged from fresh build:\n%s\n%s", aj, bj)
	}
	ka, err := loaded.KNN(3, 15)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := fresh.KNN(3, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("v0-archive kNN diverged at %d: %+v vs %+v", i, ka[i], kb[i])
		}
	}
}
